// Package cluster shards a network across N RUM proxy instances — the
// control-plane capacity answer to fabrics bigger than one process. Each
// switch has a deterministic home shard (ShardMap); a Cluster front
// routes attaches, ack-future watches, and fan-out sends to the owning
// member; and on a member's death its switches are detached with a typed
// ShardError cause and adopted by the next live shard in their
// preference order, reusing the single-proxy reconnect/resync path
// (BootstrapSwitch) so in-flight futures fail honestly and the adopted
// switch's probe infrastructure is rebuilt — never a wedge, never a
// false ack.
//
// The shape follows ez-Segway's decentralized coordination: partition
// the network, run each partition's acknowledgment machinery locally,
// and aggregate only what crosses partitions — here, composite ack
// futures (WatchAll/Fanout) whose failure cause identifies the losing
// shard.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"rum/internal/core"
	"rum/internal/proxy"
	"rum/internal/sim"
	"rum/internal/transport"
)

// Config wires a Cluster.
type Config struct {
	// Shards is the member count (ignored when Map is set).
	Shards int
	// Map overrides the default rendezvous-only ShardMap — e.g. one with
	// pod-aware primaries from AssignFatTree.
	Map *ShardMap
	// Core is the per-member RUM configuration template; every member is
	// built from it (same clock, same techniques, same knobs).
	// Core.Clock is required.
	Core core.Config
	// Topology is the full fabric map, shared by every member. A member
	// holds sessions only for its own switches, but it needs the whole
	// map to pick probe injectors/receivers among those it has.
	Topology *core.Topology
}

// Cluster fronts N RUM members with deterministic switch routing,
// cross-member composite ack futures, and crash handoff.
type Cluster struct {
	smap    *ShardMap
	members []*core.RUM
	clk     sim.Clock

	mu       sync.Mutex
	alive    []bool
	attached map[string]int // switch name → member index holding its session
}

// New builds the members and the routing front.
func New(cfg Config) (*Cluster, error) {
	smap := cfg.Map
	if smap == nil {
		var err error
		if smap, err = NewShardMap(cfg.Shards); err != nil {
			return nil, err
		}
	}
	if cfg.Core.Clock == nil {
		return nil, fmt.Errorf("cluster: Config.Core.Clock is required")
	}
	c := &Cluster{
		smap:     smap,
		members:  make([]*core.RUM, smap.N()),
		clk:      cfg.Core.Clock,
		alive:    make([]bool, smap.N()),
		attached: make(map[string]int),
	}
	for i := range c.members {
		r, err := core.New(cfg.Core, cfg.Topology)
		if err != nil {
			return nil, fmt.Errorf("cluster: building member %d: %w", i, err)
		}
		c.members[i] = r
		c.alive[i] = true
	}
	return c, nil
}

// N returns the member count.
func (c *Cluster) N() int { return len(c.members) }

// Member returns one member's RUM instance.
func (c *Cluster) Member(i int) *core.RUM { return c.members[i] }

// Map returns the shard map.
func (c *Cluster) Map() *ShardMap { return c.smap }

// Alive reports whether member i is up.
func (c *Cluster) Alive(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.alive[i]
}

// Owner returns the live member that should serve sw right now (its home
// shard, or the next live shard in its preference order after deaths).
// ok is false when every member is down.
func (c *Cluster) Owner(sw string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ownerLocked(sw)
}

func (c *Cluster) ownerLocked(sw string) (int, bool) {
	return c.smap.Owner(sw, func(i int) bool { return c.alive[i] })
}

// Located returns the member currently holding sw's session, if any —
// the actual placement, which trails Owner during a handoff window.
func (c *Cluster) Located(sw string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.attached[sw]
	return i, ok
}

// SwitchesOf lists the switches member i currently holds, sorted.
func (c *Cluster) SwitchesOf(i int) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for sw, m := range c.attached {
		if m == i {
			out = append(out, sw)
		}
	}
	sort.Strings(out)
	return out
}

// AttachSwitch routes an attach to sw's live owner and records the
// placement. It is both the initial wiring path and the adoption path
// after Kill: re-attaching an orphan routes to the next live shard in
// its preference order. The returned member index is where the session
// landed.
//
// A switch that is already attached is refused: with backoff-governed
// re-dials in flight, a Revive racing an adoption must not let two
// members both claim the session (the second attach would shadow the
// first in the placement map and orphan its session forever).
func (c *Cluster) AttachSwitch(name string, dpid uint64, ctrlConn, swConn transport.Conn) (*proxy.Session, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, dup := c.attached[name]; dup {
		return nil, -1, fmt.Errorf("cluster: %s is already attached to member %d", name, prev)
	}
	owner, ok := c.ownerLocked(name)
	if !ok {
		return nil, -1, fmt.Errorf("cluster: no live shard to own %s", name)
	}
	sess, err := c.members[owner].AttachSwitch(name, dpid, ctrlConn, swConn)
	if err != nil {
		return nil, -1, err
	}
	c.attached[name] = owner
	return sess, owner, nil
}

// DetachSwitch detaches sw from whichever member holds it, failing its
// pending updates and watchers with cause (nil defaults to
// core.ErrChannelLost, matching RUM.DetachSwitch).
func (c *Cluster) DetachSwitch(name string, cause error) bool {
	c.mu.Lock()
	idx, ok := c.attached[name]
	if ok {
		delete(c.attached, name)
	}
	c.mu.Unlock()
	if !ok {
		return false
	}
	return c.members[idx].DetachSwitchCause(name, cause)
}

// Watch returns an ack future for (sw, xid), registered on the member
// holding sw's session. When no member holds sw — its owner died and no
// adoption has happened yet — the returned handle is already failed with
// a ShardError wrapping ErrProxyLost: registering a real watcher on a
// dead shard could only wedge, and the typed failure routes the caller
// into the same repair path DetachSwitchCause feeds.
func (c *Cluster) Watch(sw string, xid uint32) *core.UpdateHandle {
	c.mu.Lock()
	idx, ok := c.attached[sw]
	var blame int
	if !ok {
		if o, live := c.ownerLocked(sw); live {
			blame = o
		} else {
			blame = c.smap.Rank(sw)[0]
		}
	}
	c.mu.Unlock()
	if ok {
		return c.members[idx].Watch(sw, xid)
	}
	return core.FailedHandle(c.clk.Now(), sw, xid,
		&ShardError{Shard: blame, Switch: sw, XID: xid, Err: ErrProxyLost})
}

// Kill marks member i dead and detaches every switch it holds with a
// ShardError cause wrapping ErrProxyLost — each session's pending
// updates and registered futures resolve as failed, typed with the
// losing shard. It returns the orphaned switch names (sorted); re-attach
// them via AttachSwitch (which now routes to their next-preferred live
// shard) and rebuild their probe state with BootstrapSwitch.
func (c *Cluster) Kill(i int) []string {
	c.mu.Lock()
	c.alive[i] = false
	var orphans []string
	for sw, m := range c.attached {
		if m == i {
			orphans = append(orphans, sw)
		}
	}
	sort.Strings(orphans)
	for _, sw := range orphans {
		delete(c.attached, sw)
	}
	c.mu.Unlock()
	for _, sw := range orphans {
		c.members[i].DetachSwitchCause(sw, &ShardError{Shard: i, Switch: sw, Err: ErrProxyLost})
	}
	return orphans
}

// Revive marks member i live again. Switches do not move back on their
// own: they stay with their adoptive shard until detached and
// re-attached (sticky placement keeps handoffs rare).
func (c *Cluster) Revive(i int) {
	c.mu.Lock()
	c.alive[i] = true
	c.mu.Unlock()
}

// Bootstrap installs probe infrastructure on every live member's
// switches (RUM.Bootstrap per member).
func (c *Cluster) Bootstrap() error {
	c.mu.Lock()
	live := make([]*core.RUM, 0, len(c.members))
	for i, r := range c.members {
		if c.alive[i] {
			live = append(live, r)
		}
	}
	c.mu.Unlock()
	for _, r := range live {
		if err := r.Bootstrap(); err != nil {
			return err
		}
	}
	return nil
}

// BootstrapSwitch re-bootstraps one switch on the member holding it —
// the adoption counterpart of RUM.BootstrapSwitch: the adopted switch's
// FIB is re-read, probe infrastructure is reinstalled, and its new
// neighbors refresh their catch rules.
func (c *Cluster) BootstrapSwitch(name string) error {
	c.mu.Lock()
	idx, ok := c.attached[name]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: %s is not attached to any member", name)
	}
	return c.members[idx].BootstrapSwitch(name)
}

// Stats sums the members' counters (acks sent, probes injected,
// control-plane fallbacks).
func (c *Cluster) Stats() (acks, probes, fallbacks uint64) {
	for _, r := range c.members {
		a, p, f := r.Stats()
		acks += a
		probes += p
		fallbacks += f
	}
	return acks, probes, fallbacks
}
