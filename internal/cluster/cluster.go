// Package cluster shards a network across N RUM proxy instances — the
// control-plane capacity answer to fabrics bigger than one process. Each
// switch has a deterministic home shard (ShardMap); a Cluster front
// routes attaches, ack-future watches, and fan-out sends to the owning
// member; and on a member's death its switches are detached with a typed
// ShardError cause and adopted by the next live shard in their
// preference order, reusing the single-proxy reconnect/resync path
// (BootstrapSwitch) so in-flight futures fail honestly and the adopted
// switch's probe infrastructure is rebuilt — never a wedge, never a
// false ack.
//
// The shape follows ez-Segway's decentralized coordination: partition
// the network, run each partition's acknowledgment machinery locally,
// and aggregate only what crosses partitions — here, composite ack
// futures (WatchAll/Fanout) whose failure cause identifies the losing
// shard.
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rum/internal/core"
	"rum/internal/hsa"
	"rum/internal/journal"
	"rum/internal/proxy"
	"rum/internal/sim"
	"rum/internal/transport"
)

// Config wires a Cluster.
type Config struct {
	// Shards is the member count (ignored when Map is set).
	Shards int
	// Map overrides the default rendezvous-only ShardMap — e.g. one with
	// pod-aware primaries from AssignFatTree.
	Map *ShardMap
	// Core is the per-member RUM configuration template; every member is
	// built from it (same clock, same techniques, same knobs).
	// Core.Clock is required.
	Core core.Config
	// Topology is the full fabric map, shared by every member. A member
	// holds sessions only for its own switches, but it needs the whole
	// map to pick probe injectors/receivers among those it has.
	Topology *core.Topology

	// ReadFIB, when set, enables crash rescue: every member streams a
	// pending-intent journal for each of its switches to the switch's
	// first live non-owner in the preference order, and on Kill the
	// adoptive member diffs the journaled intents against this function's
	// re-read of the switch's flow table to resolve the dead member's
	// in-flight futures truthfully — confirm the verifiably installed,
	// re-issue the missing, and fail typed only what was never journaled.
	// Nil keeps the pre-rescue behavior: Kill fails every in-flight
	// future with ErrProxyLost.
	ReadFIB func(sw string) []hsa.Rule

	// HandoffGrace bounds how long a Watch for a switch no live member
	// serves (its owner died, adoption pending) is parked before failing:
	// within the grace the handle stays unresolved and is re-bound onto
	// the adoptive member when the switch re-attaches; at expiry it fails
	// with the same typed ShardError the ungraced path returns
	// immediately. Zero (the default) keeps the immediate fail-fast.
	HandoffGrace time.Duration
}

// Cluster fronts N RUM members with deterministic switch routing,
// cross-member composite ack futures, and crash handoff.
type Cluster struct {
	smap    *ShardMap
	members []*core.RUM
	clk     sim.Clock
	readFIB func(sw string) []hsa.Rule
	grace   time.Duration

	// Intent replication (nil-ReadFIB clusters never touch these).
	// replicas[i] is the store member i holds on behalf of the others;
	// jtarget maps a switch to the member replicating its journal (-1
	// when no live non-owner exists); aliveAtomic mirrors alive for the
	// lock-free drop of frames bound for a dead target.
	replicas    []*journal.Replica
	aliveAtomic []atomic.Bool
	jtarget     sync.Map // switch name → int

	mu       sync.Mutex
	alive    []bool
	attached map[string]int // switch name → member index holding its session
	rescues  map[string]*rescueState
	parked   map[string][]*core.UpdateHandle // HandoffGrace-parked watches
	rstats   RescueStats
}

// New builds the members and the routing front.
func New(cfg Config) (*Cluster, error) {
	smap := cfg.Map
	if smap == nil {
		var err error
		if smap, err = NewShardMap(cfg.Shards); err != nil {
			return nil, err
		}
	}
	if cfg.Core.Clock == nil {
		return nil, fmt.Errorf("cluster: Config.Core.Clock is required")
	}
	c := &Cluster{
		smap:     smap,
		members:  make([]*core.RUM, smap.N()),
		clk:      cfg.Core.Clock,
		readFIB:  cfg.ReadFIB,
		grace:    cfg.HandoffGrace,
		alive:    make([]bool, smap.N()),
		attached: make(map[string]int),
		rescues:  make(map[string]*rescueState),
		parked:   make(map[string][]*core.UpdateHandle),
	}
	if cfg.ReadFIB != nil {
		c.replicas = make([]*journal.Replica, smap.N())
		c.aliveAtomic = make([]atomic.Bool, smap.N())
	}
	for i := range c.members {
		r, err := core.New(cfg.Core, cfg.Topology)
		if err != nil {
			return nil, fmt.Errorf("cluster: building member %d: %w", i, err)
		}
		c.members[i] = r
		c.alive[i] = true
		if cfg.ReadFIB != nil {
			c.replicas[i] = journal.NewReplica()
			c.aliveAtomic[i].Store(true)
			r.SetJournalSink(clusterSink{c})
		}
	}
	return c, nil
}

// N returns the member count.
func (c *Cluster) N() int { return len(c.members) }

// Member returns one member's RUM instance.
func (c *Cluster) Member(i int) *core.RUM { return c.members[i] }

// Map returns the shard map.
func (c *Cluster) Map() *ShardMap { return c.smap }

// Alive reports whether member i is up.
func (c *Cluster) Alive(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.alive[i]
}

// Owner returns the live member that should serve sw right now (its home
// shard, or the next live shard in its preference order after deaths).
// ok is false when every member is down.
func (c *Cluster) Owner(sw string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ownerLocked(sw)
}

func (c *Cluster) ownerLocked(sw string) (int, bool) {
	return c.smap.Owner(sw, func(i int) bool { return c.alive[i] })
}

// Located returns the member currently holding sw's session, if any —
// the actual placement, which trails Owner during a handoff window.
func (c *Cluster) Located(sw string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.attached[sw]
	return i, ok
}

// SwitchesOf lists the switches member i currently holds, sorted.
func (c *Cluster) SwitchesOf(i int) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for sw, m := range c.attached {
		if m == i {
			out = append(out, sw)
		}
	}
	sort.Strings(out)
	return out
}

// AttachSwitch routes an attach to sw's live owner and records the
// placement. It is both the initial wiring path and the adoption path
// after Kill: re-attaching an orphan routes to the next live shard in
// its preference order. The returned member index is where the session
// landed.
//
// A switch that is already attached is refused: with backoff-governed
// re-dials in flight, a Revive racing an adoption must not let two
// members both claim the session (the second attach would shadow the
// first in the placement map and orphan its session forever).
func (c *Cluster) AttachSwitch(name string, dpid uint64, ctrlConn, swConn transport.Conn) (*proxy.Session, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, dup := c.attached[name]; dup {
		return nil, -1, fmt.Errorf("cluster: %s is already attached to member %d", name, prev)
	}
	owner, ok := c.ownerLocked(name)
	if !ok {
		return nil, -1, fmt.Errorf("cluster: no live shard to own %s", name)
	}
	sess, err := c.members[owner].AttachSwitch(name, dpid, ctrlConn, swConn)
	if err != nil {
		return nil, -1, err
	}
	c.attached[name] = owner
	if c.readFIB != nil {
		c.setJournalTargetLocked(name, owner)
	}
	// Adoption completes the HandoffGrace contract: watches parked while
	// no member served the switch re-home onto the serving member now.
	if hs := c.parked[name]; len(hs) > 0 {
		delete(c.parked, name)
		for _, h := range hs {
			c.members[owner].Rebind(h)
		}
	}
	return sess, owner, nil
}

// DetachSwitch detaches sw from whichever member holds it, failing its
// pending updates and watchers with cause (nil defaults to
// core.ErrChannelLost, matching RUM.DetachSwitch).
func (c *Cluster) DetachSwitch(name string, cause error) bool {
	c.mu.Lock()
	idx, ok := c.attached[name]
	if ok {
		delete(c.attached, name)
	}
	c.mu.Unlock()
	if c.readFIB != nil {
		// An orphan detached before adoption ran has parked rescue state:
		// its taken futures must fail typed, not dangle.
		c.dropRescue(name, c.clk.Now())
	}
	if !ok {
		return false
	}
	detached := c.members[idx].DetachSwitchCause(name, cause)
	if c.readFIB != nil {
		// Clean detach: the member resolved or failed everything itself;
		// the replicated journal has nothing left to rescue.
		if v, found := c.jtarget.LoadAndDelete(name); found {
			if t := v.(int); t >= 0 {
				c.replicas[t].DropSwitch(name)
			}
		}
	}
	return detached
}

// Watch returns an ack future for (sw, xid), registered on the member
// holding sw's session. When no member holds sw — its owner died and no
// adoption has happened yet — the outcome depends on Config.HandoffGrace:
// with the default zero grace the returned handle is already failed with
// a ShardError wrapping ErrProxyLost (registering a real watcher on a
// dead shard could only wedge, and the typed failure routes the caller
// into the same repair path DetachSwitchCause feeds); with a positive
// grace the handle is parked unresolved and re-bound onto the adoptive
// member when the switch re-attaches, failing with the same typed cause
// only if the grace expires first.
func (c *Cluster) Watch(sw string, xid uint32) *core.UpdateHandle {
	c.mu.Lock()
	idx, ok := c.attached[sw]
	if ok {
		c.mu.Unlock()
		return c.members[idx].Watch(sw, xid)
	}
	var blame int
	if o, live := c.ownerLocked(sw); live {
		blame = o
	} else {
		blame = c.smap.Rank(sw)[0]
	}
	now := c.clk.Now()
	if c.grace <= 0 {
		c.mu.Unlock()
		return core.FailedHandle(now, sw, xid,
			&ShardError{Shard: blame, Switch: sw, XID: xid, Err: ErrProxyLost})
	}
	h := core.NewRemoteHandle(sw, xid, c.unpark)
	c.parked[sw] = append(c.parked[sw], h)
	c.mu.Unlock()
	c.clk.After(c.grace, func() { c.expireParked(h, blame, now) })
	return h
}

// unpark is the Cancel hook of a parked watch: it releases the parking
// slot so neither adoption nor grace expiry touches the handle again.
func (c *Cluster) unpark(h *core.UpdateHandle) { c.removeParked(h) }

// removeParked drops h from its parking list, reporting whether it was
// still parked (false: adoption already re-bound it, or Cancel beat us).
func (c *Cluster) removeParked(h *core.UpdateHandle) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	hs := c.parked[h.Switch()]
	for i, p := range hs {
		if p == h {
			hs[i] = hs[len(hs)-1]
			hs[len(hs)-1] = nil
			if len(hs) == 1 {
				delete(c.parked, h.Switch())
			} else {
				c.parked[h.Switch()] = hs[:len(hs)-1]
			}
			return true
		}
	}
	return false
}

// expireParked fails a parked watch whose HandoffGrace ran out before
// any member adopted its switch. A handle already re-bound (or
// cancelled) is no longer parked and is left alone.
func (c *Cluster) expireParked(h *core.UpdateHandle, blame int, parkedAt time.Duration) {
	if !c.removeParked(h) {
		return
	}
	h.Deliver(core.AckResult{
		Switch: h.Switch(), XID: h.XID(), Outcome: core.OutcomeFailed,
		IssuedAt: parkedAt, ConfirmedAt: c.clk.Now(),
		Err: &ShardError{Shard: blame, Switch: h.Switch(), XID: h.XID(), Err: ErrProxyLost},
	})
}

// Kill marks member i dead and detaches every switch it holds with a
// ShardError cause wrapping ErrProxyLost. Without Config.ReadFIB each
// session's pending updates and registered futures resolve as failed,
// typed with the losing shard. With rescue enabled the registered
// futures are instead taken out of the dying member's shards BEFORE the
// detach — its pending updates still run every refcount, strategy, and
// pool obligation, but fail into an empty watcher table — and parked,
// together with the successor replica's journaled intents, until the
// orphan's adoption (BootstrapSwitch) resolves each future truthfully.
// It returns the orphaned switch names (sorted); re-attach them via
// AttachSwitch (which now routes to their next-preferred live shard) and
// rebuild their probe state with BootstrapSwitch.
func (c *Cluster) Kill(i int) []string {
	c.mu.Lock()
	c.alive[i] = false
	if c.readFIB != nil {
		// Lock-free mirror first: frames bound for the dead member's
		// replica drop from here on.
		c.aliveAtomic[i].Store(false)
	}
	var orphans []string
	for sw, m := range c.attached {
		if m == i {
			orphans = append(orphans, sw)
		}
	}
	sort.Strings(orphans)
	for _, sw := range orphans {
		delete(c.attached, sw)
	}
	if c.readFIB != nil {
		// Surviving switches that journaled to i re-target their next
		// live non-owner; the accumulated intents die with i's store, but
		// their owners are alive and will resolve them normally.
		c.jtarget.Range(func(k, v any) bool {
			if v.(int) == i {
				if owner, ok := c.attached[k.(string)]; ok {
					c.setJournalTargetLocked(k.(string), owner)
				} else {
					c.jtarget.Store(k, -1)
				}
			}
			return true
		})
	}
	killedAt := c.clk.Now()
	c.mu.Unlock()
	for _, sw := range orphans {
		if c.readFIB == nil {
			c.members[i].DetachSwitchCause(sw, &ShardError{Shard: i, Switch: sw, Err: ErrProxyLost})
			continue
		}
		// Order matters: take the future chains first (so the detach
		// fails pending updates into an empty watcher table), then detach
		// (which ships the session's final buffered journal frame to the
		// replica), then snapshot the replica.
		chains := c.members[i].TakeWatchers(sw)
		c.members[i].DetachSwitchCause(sw, &ShardError{Shard: i, Switch: sw, Err: ErrProxyLost})
		var intents []journal.Intent
		if v, ok := c.jtarget.LoadAndDelete(sw); ok {
			if t := v.(int); t >= 0 {
				intents = c.replicas[t].TakePending(sw)
			}
		}
		if len(chains) > 0 || len(intents) > 0 {
			c.mu.Lock()
			c.rescues[sw] = &rescueState{from: i, killed: killedAt, chains: chains, intents: intents}
			c.mu.Unlock()
		}
	}
	if c.readFIB != nil {
		// The dead member's own replica store (other members' journals)
		// is gone with its process.
		c.replicas[i].Reset()
	}
	return orphans
}

// Revive marks member i live again. Switches do not move back on their
// own: they stay with their adoptive shard until detached and
// re-attached (sticky placement keeps handoffs rare).
func (c *Cluster) Revive(i int) {
	c.mu.Lock()
	c.alive[i] = true
	if c.readFIB != nil {
		c.aliveAtomic[i].Store(true)
	}
	c.mu.Unlock()
}

// Bootstrap installs probe infrastructure on every live member's
// switches (RUM.Bootstrap per member).
func (c *Cluster) Bootstrap() error {
	c.mu.Lock()
	live := make([]*core.RUM, 0, len(c.members))
	for i, r := range c.members {
		if c.alive[i] {
			live = append(live, r)
		}
	}
	c.mu.Unlock()
	for _, r := range live {
		if err := r.Bootstrap(); err != nil {
			return err
		}
	}
	return nil
}

// BootstrapSwitch re-bootstraps one switch on the member holding it —
// the adoption counterpart of RUM.BootstrapSwitch: the adopted switch's
// FIB is re-read, probe infrastructure is reinstalled, and its new
// neighbors refresh their catch rules. With Config.ReadFIB set it then
// runs the rescue sweep for futures salvaged from a killed member (see
// runRescue), synchronously, so by return every rescued future is
// confirmed, re-issued and tracked, or failed typed.
func (c *Cluster) BootstrapSwitch(name string) error {
	c.mu.Lock()
	idx, ok := c.attached[name]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: %s is not attached to any member", name)
	}
	if err := c.members[idx].BootstrapSwitch(name); err != nil {
		return err
	}
	if c.readFIB != nil {
		c.runRescue(name, idx)
	}
	return nil
}

// Stats sums the members' counters (acks sent, probes injected,
// control-plane fallbacks).
func (c *Cluster) Stats() (acks, probes, fallbacks uint64) {
	for _, r := range c.members {
		a, p, f := r.Stats()
		acks += a
		probes += p
		fallbacks += f
	}
	return acks, probes, fallbacks
}
