package cluster

import (
	"sort"
	"time"

	"rum/internal/core"
	"rum/internal/flowtable"
	"rum/internal/journal"
	"rum/internal/of"
	"rum/internal/planner"
)

// rescueState is everything Kill salvages from one orphaned switch: the
// ack-future chains taken out of the dead member's shard before its
// detach path could fail them, and the pending intents its successor
// replica had accumulated. It waits, keyed by switch, until the orphan's
// adoption (BootstrapSwitch) runs the rescue sweep.
type rescueState struct {
	from    int // dead member index, blamed in typed failures
	killed  time.Duration
	chains  map[uint32]*core.UpdateHandle
	intents []journal.Intent
}

// RescueStats counts the rescue sweep's per-future outcomes since start.
type RescueStats struct {
	// Rescued futures were confirmed against the re-read switch FIB: the
	// rule was verifiably installed, so the future resolved positively
	// with the original issue timestamp.
	Rescued int
	// Reissued futures had a journaled FlowMod not present in the FIB:
	// the future was re-bound on the adoptive member and the FlowMod
	// re-injected under its original xid, resolving through the
	// strategy's real acknowledgment machinery.
	Reissued int
	// NoIntent futures had no replicated intent to rescue from (the
	// update died between the controller and the dead member's journal);
	// they fail typed with ErrProxyLost into the caller's repair path.
	NoIntent int
	// Failed counts journaled futures failed despite a reachable switch —
	// the truthful-resolution contract says this must stay zero
	// (benchcheck gates it); it can only move when an intent has neither
	// verifiable installation nor a re-issuable body.
	Failed int
}

// RescueStats returns the accumulated rescue counters.
func (c *Cluster) RescueStats() RescueStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rstats
}

// clusterSink is the core.JournalSink every member shares: it routes a
// switch's replication frames to the replica held by the switch's
// journal target (its first live non-owner in the shard map's preference
// order). Frames for switches with no live target, or whose target died
// an instant ago, are dropped — replication is best-effort by design,
// and the rescue sweep treats a missing intent as a typed failure, never
// a false ack.
type clusterSink struct{ c *Cluster }

func (s clusterSink) JournalFrame(sw string, frame []byte) {
	v, ok := s.c.jtarget.Load(sw)
	if !ok {
		return
	}
	t := v.(int)
	if t < 0 || !s.c.aliveAtomic[t].Load() {
		return
	}
	_ = s.c.replicas[t].ApplyFrame(frame)
}

// setJournalTargetLocked (re)computes sw's journal target: the first
// live member in its preference order that is not the owner. Called with
// c.mu held whenever placement or liveness changes.
func (c *Cluster) setJournalTargetLocked(sw string, owner int) {
	target := -1
	for _, m := range c.smap.Rank(sw) {
		if m != owner && c.alive[m] {
			target = m
			break
		}
	}
	c.jtarget.Store(sw, target)
}

// takeRescue snapshots and clears a switch's parked rescue state.
func (c *Cluster) takeRescue(sw string) *rescueState {
	c.mu.Lock()
	st := c.rescues[sw]
	delete(c.rescues, sw)
	c.mu.Unlock()
	return st
}

// runRescue is the rescue sweep for one adopted orphan, run from
// BootstrapSwitch once the adoptive member (idx) serves the switch
// again. For every future taken from the dead member it resolves
// truthfully, in deterministic order (journal seq, then xid):
//
//   - intent present and its rule verifiably in the re-read FIB →
//     confirm with the original issue timestamp (no re-install, no
//     false ack: the journal digest / resync predicate is the proof);
//   - intent present but the rule missing → re-bind the future on the
//     adoptive member and re-inject the journaled FlowMod under its
//     original xid, so the switch's strategy confirms it for real;
//   - no intent → fail typed with a ShardError wrapping ErrProxyLost,
//     routing the caller into the same repair path a non-rescuing
//     cluster uses.
func (c *Cluster) runRescue(sw string, idx int) {
	st := c.takeRescue(sw)
	if st == nil || len(st.chains) == 0 {
		return
	}
	// Model the switch's current FIB once; every intent diffs against it
	// with the planner's resync predicate.
	table := flowtable.New()
	digests := make(map[uint64]bool)
	if c.readFIB != nil {
		var scratch []byte
		for _, r := range c.readFIB(sw) {
			table.Apply(&of.FlowMod{
				Command:  of.FCAdd,
				Priority: r.Priority,
				Match:    r.Match,
				BufferID: of.BufferNone,
				OutPort:  of.PortNone,
				Actions:  r.Actions,
			})
			var d uint64
			d, scratch = journal.DigestRule(scratch, r.Priority, r.Match, r.Actions)
			digests[d] = true
		}
	}
	intentByXID := make(map[uint32]*journal.Intent, len(st.intents))
	for i := range st.intents {
		it := &st.intents[i]
		if prev, dup := intentByXID[it.XID]; !dup || it.Seq > prev.Seq {
			intentByXID[it.XID] = it
		}
	}
	// Deterministic sweep order: journaled futures by intent seq, then
	// intent-less futures by xid — seed replay must reproduce the rescue
	// byte for byte.
	xids := make([]uint32, 0, len(st.chains))
	for xid := range st.chains {
		xids = append(xids, xid)
	}
	sort.Slice(xids, func(a, b int) bool {
		ia, ib := intentByXID[xids[a]], intentByXID[xids[b]]
		switch {
		case ia != nil && ib != nil:
			if ia.Seq != ib.Seq {
				return ia.Seq < ib.Seq
			}
		case ia != nil:
			return true
		case ib != nil:
			return false
		}
		return xids[a] < xids[b]
	})
	now := c.clk.Now()
	var rescued, reissued, noIntent, failed int
	for _, xid := range xids {
		chain := st.chains[xid]
		it := intentByXID[xid]
		if it == nil {
			failChain(chain, core.AckResult{
				Switch: sw, XID: xid, Outcome: core.OutcomeFailed,
				IssuedAt: st.killed, ConfirmedAt: now,
				Err: &ShardError{Shard: st.from, Switch: sw, XID: xid, Err: ErrProxyLost},
			})
			noIntent++
			continue
		}
		var fm *of.FlowMod
		if len(it.Body) > 0 {
			if m, err := of.Unmarshal(it.Body); err == nil {
				fm, _ = m.(*of.FlowMod)
			}
		}
		applied := false
		switch {
		case fm != nil:
			applied = planner.RuleApplied(table, fm)
		default:
			applied = digests[it.Digest]
		}
		switch {
		case applied:
			outcome := core.OutcomeInstalled
			if fm != nil && (fm.Command == of.FCDelete || fm.Command == of.FCDeleteStrict) {
				outcome = core.OutcomeRemoved
			}
			resolveChain(chain, core.AckResult{
				Switch: sw, XID: xid, Outcome: outcome,
				IssuedAt: it.IssuedAt, ConfirmedAt: now, Latency: now - it.IssuedAt,
			})
			if fm != nil {
				of.Release(fm)
			}
			rescued++
		case fm != nil:
			// Re-home every future first, then re-issue once: the
			// adoptive member's strategy resolves the xid for all of them.
			var hs []*core.UpdateHandle
			for h := chain; h != nil; {
				next := h.NextTaken()
				hs = append(hs, h)
				c.members[idx].Rebind(h)
				h = next
			}
			if err := c.members[idx].InjectFlowMod(sw, fm); err != nil {
				res := core.AckResult{
					Switch: sw, XID: xid, Outcome: core.OutcomeFailed,
					IssuedAt: it.IssuedAt, ConfirmedAt: now,
					Err: &ShardError{Shard: st.from, Switch: sw, XID: xid, Err: ErrProxyLost},
				}
				for _, h := range hs {
					h.Deliver(res)
					h.Cancel() // deregister the rebind; Deliver already won
				}
				failed++
				continue
			}
			reissued++
		default:
			// Journaled body-less and not verifiably installed: nothing
			// truthful is left to do but fail typed. This is the one path
			// that moves the gated Failed counter.
			failChain(chain, core.AckResult{
				Switch: sw, XID: xid, Outcome: core.OutcomeFailed,
				IssuedAt: it.IssuedAt, ConfirmedAt: now,
				Err: &ShardError{Shard: st.from, Switch: sw, XID: xid, Err: ErrProxyLost},
			})
			failed++
		}
	}
	c.mu.Lock()
	c.rstats.Rescued += rescued
	c.rstats.Reissued += reissued
	c.rstats.NoIntent += noIntent
	c.rstats.Failed += failed
	c.mu.Unlock()
}

// resolveChain delivers one positive result to every handle in a taken
// chain.
func resolveChain(h *core.UpdateHandle, res core.AckResult) {
	for h != nil {
		next := h.NextTaken()
		h.Deliver(res)
		h = next
	}
}

// failChain delivers one typed failure to every handle in a taken chain.
func failChain(h *core.UpdateHandle, res core.AckResult) {
	resolveChain(h, res)
}

// dropRescue fails any parked rescue state for a switch that is being
// cleanly detached before adoption ran (the caller owns repair); taken
// futures must not be left unresolved.
func (c *Cluster) dropRescue(sw string, now time.Duration) {
	st := c.takeRescue(sw)
	if st == nil {
		return
	}
	n := 0
	for xid, chain := range st.chains {
		failChain(chain, core.AckResult{
			Switch: sw, XID: xid, Outcome: core.OutcomeFailed,
			IssuedAt: st.killed, ConfirmedAt: now,
			Err: &ShardError{Shard: st.from, Switch: sw, XID: xid, Err: ErrProxyLost},
		})
		n++
	}
	c.mu.Lock()
	c.rstats.NoIntent += n
	c.mu.Unlock()
}
