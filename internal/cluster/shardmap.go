package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"rum/internal/netsim"
)

// ShardMap deterministically assigns switch names to one of N proxy
// shards. Every member computes the same assignment from the map alone —
// no coordination traffic — so a controller front, each rumproxy
// instance, and a test harness all agree on who owns what.
//
// The base order is rendezvous (highest-random-weight) hashing: each
// (switch, shard) pair gets a pseudo-random weight and a switch's
// preference order is the shards sorted by descending weight. Rendezvous
// ordering doubles as the failover schedule — when a shard dies, each of
// its switches moves to its own next-preferred live shard, and no switch
// owned by a surviving shard moves at all (minimal reshuffle).
//
// An explicit primary pins a switch's first choice without touching the
// failover order. The fat-tree assignment uses it to keep a pod's edge
// and aggregation switches on one shard: the probing techniques inject
// and catch probe packets via neighbor switches attached to the same RUM
// instance, so co-locating neighbors preserves data-plane probing;
// cross-shard neighbors degrade those rules to the control-plane
// fallback, never to a false ack.
type ShardMap struct {
	n       int
	primary map[string]int
}

// NewShardMap builds a map over n shards (n ≥ 1).
func NewShardMap(n int) (*ShardMap, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: shard count %d must be positive", n)
	}
	return &ShardMap{n: n, primary: make(map[string]int)}, nil
}

// N returns the shard count.
func (m *ShardMap) N() int { return m.n }

// SetPrimary pins sw's first-choice shard. The rendezvous order of the
// remaining shards is unchanged, so failover stays minimal-reshuffle.
func (m *ShardMap) SetPrimary(sw string, shard int) error {
	if shard < 0 || shard >= m.n {
		return fmt.Errorf("cluster: primary shard %d for %s out of range [0,%d)", shard, sw, m.n)
	}
	m.primary[sw] = shard
	return nil
}

// score is the rendezvous weight of (sw, shard): FNV-1a over the pair.
func (m *ShardMap) score(sw string, shard int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", sw, shard)
	return h.Sum64()
}

// Rank returns sw's full shard preference order: the pinned primary
// first when one is set, then the remaining shards by descending
// rendezvous weight. Rank(sw)[0] is the home shard; the rest is the
// adoption order on shard death.
func (m *ShardMap) Rank(sw string) []int {
	order := make([]int, m.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := m.score(sw, order[a]), m.score(sw, order[b])
		if sa != sb {
			return sa > sb
		}
		return order[a] < order[b]
	})
	p, pinned := m.primary[sw]
	if !pinned || order[0] == p {
		return order
	}
	out := make([]int, 0, m.n)
	out = append(out, p)
	for _, s := range order {
		if s != p {
			out = append(out, s)
		}
	}
	return out
}

// Owner returns the first shard in sw's preference order that alive
// reports up (a nil alive means every shard is up). ok is false when no
// shard is alive.
func (m *ShardMap) Owner(sw string, alive func(int) bool) (owner int, ok bool) {
	for _, s := range m.Rank(sw) {
		if alive == nil || alive(s) {
			return s, true
		}
	}
	return -1, false
}

// AssignFatTree pins pod-aware primaries for a fat-tree fabric: pod p's
// edge and aggregation switches go to shard p mod N (keeping each pod's
// probe injectors and receivers co-located with their targets), and core
// switch c goes to shard c mod N (cores spread round-robin — they run
// control-plane techniques in the mixed deployment, so co-location
// matters less).
func AssignFatTree(m *ShardMap, ft *netsim.FatTree) {
	half := ft.K / 2
	for p := 0; p < ft.K; p++ {
		for i := 0; i < half; i++ {
			_ = m.SetPrimary(ft.Agg[p*half+i], p%m.n)
			_ = m.SetPrimary(ft.Edge[p*half+i], p%m.n)
		}
	}
	for c, name := range ft.Core {
		_ = m.SetPrimary(name, c%m.n)
	}
}
