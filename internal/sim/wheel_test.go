package sim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWheelFires checks basic firing: never early, roughly on time.
func TestWheelFires(t *testing.T) {
	w := NewWheel(time.Millisecond)
	start := time.Now()
	done := make(chan time.Duration, 1)
	w.Schedule(20*time.Millisecond, func() { done <- time.Since(start) })
	select {
	case elapsed := <-done:
		if elapsed < 20*time.Millisecond {
			t.Errorf("fired early: %v < 20ms", elapsed)
		}
		if elapsed > 500*time.Millisecond {
			t.Errorf("fired way late: %v", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
}

// TestWheelOrdering checks that deadlines across cascade boundaries fire
// in deadline order (within tick granularity).
func TestWheelOrdering(t *testing.T) {
	w := NewWheel(time.Millisecond)
	var mu sync.Mutex
	var order []int
	done := make(chan struct{})
	// Spread across level 0 and level 1 of the wheel (delta > 256 ticks).
	delays := []time.Duration{300 * time.Millisecond, 5 * time.Millisecond, 120 * time.Millisecond, 40 * time.Millisecond}
	want := []int{1, 3, 2, 0} // indexes sorted by delay
	for i, d := range delays {
		i := i
		w.Schedule(d, func() {
			mu.Lock()
			order = append(order, i)
			n := len(order)
			mu.Unlock()
			if n == len(delays) {
				close(done)
			}
		})
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timers never all fired")
	}
	mu.Lock()
	defer mu.Unlock()
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fire order %v, want %v", order, want)
		}
	}
}

// TestWheelStop checks O(1) cancellation semantics.
func TestWheelStop(t *testing.T) {
	w := NewWheel(time.Millisecond)
	var fired atomic.Bool
	tm := w.Schedule(50*time.Millisecond, func() { fired.Store(true) })
	if !tm.Stop() {
		t.Fatal("Stop before expiry must report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop must report false")
	}
	time.Sleep(120 * time.Millisecond)
	if fired.Load() {
		t.Fatal("cancelled timer fired")
	}
	if p := w.Pending(); p != 0 {
		t.Fatalf("pending = %d after cancel, want 0", p)
	}
}

// TestWheelIdleRestart checks the driver parks when drained and restarts
// on the next Schedule.
func TestWheelIdleRestart(t *testing.T) {
	w := NewWheel(time.Millisecond)
	for round := 0; round < 3; round++ {
		done := make(chan struct{})
		w.Schedule(5*time.Millisecond, func() { close(done) })
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: timer never fired", round)
		}
		// Let the driver observe the drain and park.
		deadline := time.Now().Add(time.Second)
		for w.Pending() != 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
}

// TestWheelConcurrentScheduleCancel hammers the wheel from many
// goroutines (run under -race).
func TestWheelConcurrentScheduleCancel(t *testing.T) {
	w := NewWheel(time.Millisecond)
	var fired, cancelled atomic.Int64
	var wg sync.WaitGroup
	const perG, goroutines = 200, 8
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				d := time.Duration(1+(seed*perG+i)%400) * time.Millisecond
				tm := w.Schedule(d, func() { fired.Add(1) })
				if i%3 == 0 {
					if tm.Stop() {
						cancelled.Add(1)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	total := int64(perG * goroutines)
	deadline := time.Now().Add(10 * time.Second)
	for fired.Load()+cancelled.Load() < total && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := fired.Load() + cancelled.Load(); got != total {
		t.Fatalf("resolved %d/%d timers (fired %d, cancelled %d, pending %d)",
			got, total, fired.Load(), cancelled.Load(), w.Pending())
	}
}

// TestWallAfterUsesWheel checks Wall's positive-delay path fires and is
// cancellable through the shared wheel.
func TestWallAfterUsesWheel(t *testing.T) {
	w := NewWall()
	done := make(chan struct{})
	w.After(10*time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wall.After through wheel never fired")
	}
	var fired atomic.Bool
	tm := w.After(100*time.Millisecond, func() { fired.Store(true) })
	if !tm.Stop() {
		t.Fatal("Stop on wheel-scheduled Wall timer must report true")
	}
	time.Sleep(200 * time.Millisecond)
	if fired.Load() {
		t.Fatal("stopped Wall timer fired")
	}
}
