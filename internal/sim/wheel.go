package sim

import (
	"sync"
	"time"
)

// Wheel is a hierarchical timer wheel: four levels of 256 slots over a
// coarse tick, with O(1) insert and cancel. It exists for the wall-clock
// deployment's deadline load — the timeout and adaptive acknowledgment
// strategies hold one pending deadline per unconfirmed rule update, so a
// proxy absorbing a datacenter churn burst parks tens of thousands of
// timers at once. A heap (or the runtime timer heap behind
// time.AfterFunc) pays O(log n) churn per insert/cancel at exactly the
// moment the hot path is busiest; the wheel pays a pointer splice.
//
// Precision is deliberately coarse: a timer fires on the first tick
// boundary at or after its deadline, so callbacks run up to one tick
// late and never early. RUM's deadlines are safety margins (fixed
// timeouts, modeled sync periods, probe ticks), where a millisecond of
// lateness only adds slack.
//
// The driver goroutine is started lazily by the first Schedule and parks
// itself again whenever the wheel drains, so idle wheels cost nothing and
// wheels need no explicit shutdown.
type Wheel struct {
	tick time.Duration

	mu      sync.Mutex
	base    time.Time // wall time of tick 0 for the current run
	cur     uint64    // last expired tick
	levels  [wheelLevels][wheelSlots]wheelList
	pending int
	running bool
}

const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	wheelSpan   = uint64(1) << (wheelLevels * wheelBits) // ticks addressable
)

// DefaultWheelTick is the granularity wall clocks schedule deadlines at.
const DefaultWheelTick = time.Millisecond

// wheelTimer is one pending deadline, linked into its slot's list.
type wheelTimer struct {
	w    *Wheel
	fn   func()
	at   uint64 // absolute expiry tick
	list *wheelList
	prev *wheelTimer
	next *wheelTimer
}

// wheelList is an intrusive doubly-linked slot list.
type wheelList struct {
	head, tail *wheelTimer
}

func (l *wheelList) push(t *wheelTimer) {
	t.list = l
	t.prev = l.tail
	t.next = nil
	if l.tail != nil {
		l.tail.next = t
	} else {
		l.head = t
	}
	l.tail = t
}

func (l *wheelList) remove(t *wheelTimer) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		l.head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	} else {
		l.tail = t.prev
	}
	t.list, t.prev, t.next = nil, nil, nil
}

// take empties the list and returns its head; entries stay chained via
// next (prev/list are cleared as the caller walks them).
func (l *wheelList) take() *wheelTimer {
	h := l.head
	l.head, l.tail = nil, nil
	return h
}

// NewWheel creates a wheel with the given tick (DefaultWheelTick when
// zero or negative).
func NewWheel(tick time.Duration) *Wheel {
	if tick <= 0 {
		tick = DefaultWheelTick
	}
	return &Wheel{tick: tick}
}

// Tick returns the wheel's granularity.
func (w *Wheel) Tick() time.Duration { return w.tick }

// Pending returns the number of scheduled, unfired, uncancelled timers.
func (w *Wheel) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pending
}

// Schedule arranges fn to run once d has elapsed (rounded up to the next
// tick boundary, clamped into the wheel's horizon). fn runs on its own
// goroutine, like time.AfterFunc.
func (w *Wheel) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	w.mu.Lock()
	if !w.running {
		w.running = true
		w.base = time.Now()
		w.cur = 0
		go w.run()
	}
	now := time.Since(w.base)
	// Round up: never fire before the deadline.
	at := uint64((now + d + w.tick - 1) / w.tick)
	if at <= w.cur {
		at = w.cur + 1
	}
	if at-w.cur >= wheelSpan {
		at = w.cur + wheelSpan - 1
	}
	t := &wheelTimer{w: w, fn: fn, at: at}
	w.place(t)
	w.pending++
	w.mu.Unlock()
	return t
}

// place links t into the level whose span covers its remaining delta.
// Callers hold w.mu.
func (w *Wheel) place(t *wheelTimer) {
	delta := t.at - w.cur
	for level := 0; level < wheelLevels; level++ {
		if delta < uint64(1)<<((level+1)*wheelBits) || level == wheelLevels-1 {
			slot := (t.at >> (level * wheelBits)) & wheelMask
			w.levels[level][slot].push(t)
			return
		}
	}
}

// cascade re-places the timers of the given level's current slot one
// level down; when that slot index just wrapped too, it cascades the next
// level up first. Callers hold w.mu.
func (w *Wheel) cascade(level int) {
	if level >= wheelLevels {
		return
	}
	slot := (w.cur >> (level * wheelBits)) & wheelMask
	if slot == 0 {
		w.cascade(level + 1)
	}
	for t := w.levels[level][slot].take(); t != nil; {
		next := t.next
		t.list, t.prev, t.next = nil, nil, nil
		w.place(t)
		t = next
	}
}

// advanceTo expires every tick up to target and returns the fired timers
// chained via next. Callers hold w.mu.
func (w *Wheel) advanceTo(target uint64) *wheelTimer {
	var fired, tail *wheelTimer
	for w.cur < target {
		w.cur++
		if w.cur&wheelMask == 0 {
			w.cascade(1)
		}
		for t := w.levels[0][w.cur&wheelMask].take(); t != nil; {
			next := t.next
			t.list, t.prev, t.next = nil, nil, nil
			w.pending--
			if tail == nil {
				fired, tail = t, t
			} else {
				tail.next = t
				tail = t
			}
			t = next
		}
	}
	return fired
}

// run is the driver goroutine: it advances the wheel once per tick and
// dispatches expired callbacks, exiting when the wheel drains.
func (w *Wheel) run() {
	tk := time.NewTicker(w.tick)
	defer tk.Stop()
	for range tk.C {
		w.mu.Lock()
		target := uint64(time.Since(w.base) / w.tick)
		fired := w.advanceTo(target)
		idle := w.pending == 0
		if idle {
			w.running = false
		}
		w.mu.Unlock()
		for t := fired; t != nil; {
			next := t.next
			t.next = nil
			go t.fn()
			t = next
		}
		if idle {
			return
		}
	}
}

// Stop implements Timer: it cancels the pending callback, reporting
// whether the cancellation happened before the callback was dispatched.
func (t *wheelTimer) Stop() bool {
	w := t.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if t.list == nil {
		return false
	}
	t.list.remove(t)
	w.pending--
	return true
}
