package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", got)
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", s.Now())
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var got []string
	s.After(time.Millisecond, func() {
		got = append(got, "a")
		s.After(time.Millisecond, func() { got = append(got, "c") })
		s.After(0, func() { got = append(got, "b") })
	})
	s.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestTimerStop(t *testing.T) {
	s := New()
	fired := false
	tm := s.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []time.Duration
	for _, d := range []time.Duration{10, 20, 30, 40} {
		d := d * time.Millisecond
		s.After(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(25 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events before 25ms, want 2", len(fired))
	}
	if s.Now() != 25*time.Millisecond {
		t.Errorf("Now = %v, want 25ms", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
	s.Run()
	if len(fired) != 4 {
		t.Errorf("total fired = %d, want 4", len(fired))
	}
}

func TestRunFor(t *testing.T) {
	s := New()
	s.RunFor(50 * time.Millisecond)
	if s.Now() != 50*time.Millisecond {
		t.Errorf("Now = %v after empty RunFor, want 50ms", s.Now())
	}
}

func TestAtSchedulesAbsolute(t *testing.T) {
	s := New()
	var at time.Duration
	s.After(10*time.Millisecond, func() {
		s.At(15*time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 15*time.Millisecond {
		t.Errorf("At fired at %v, want 15ms", at)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New()
	s.After(10*time.Millisecond, func() {
		s.After(-5*time.Millisecond, func() {
			if s.Now() != 10*time.Millisecond {
				t.Errorf("negative delay fired at %v, want 10ms", s.Now())
			}
		})
	})
	s.Run()
}

// Property: events fire in non-decreasing time order regardless of the
// insertion order, and every non-stopped event fires exactly once.
func TestOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New()
		n := 1 + r.Intn(100)
		delays := make([]time.Duration, n)
		var fired []time.Duration
		for i := range delays {
			d := time.Duration(r.Intn(50)) * time.Millisecond
			delays[i] = d
			s.After(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != n {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
		for i := range delays {
			if fired[i] != delays[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWallClock(t *testing.T) {
	w := NewWall()
	done := make(chan struct{})
	w.After(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("wall timer did not fire")
	}
	if w.Now() <= 0 {
		t.Error("wall Now() not advancing")
	}
	tm := w.After(time.Hour, func() { t.Error("cancelled wall timer fired") })
	if !tm.Stop() {
		t.Error("Stop on pending wall timer returned false")
	}
}
