// Package sim provides the deterministic discrete-event engine the
// evaluation runs on, plus the Clock abstraction that lets the same RUM
// code run over simulated time (fast, reproducible experiments) or wall
// time (a real TCP proxy deployment).
package sim

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock abstracts time for all RUM layers and the controller library.
type Clock interface {
	// Now returns the time elapsed since the clock's origin.
	Now() time.Duration
	// After schedules fn to run once d has elapsed. fn runs on the clock's
	// dispatch context (the simulator goroutine, or a timer goroutine for
	// wall clocks).
	After(d time.Duration, fn func()) Timer
}

// Timer is a cancellable pending callback.
type Timer interface {
	// Stop cancels the callback; it reports whether the cancellation
	// happened before the callback fired.
	Stop() bool
}

// event is a scheduled callback.
type event struct {
	at      time.Duration
	seq     uint64 // FIFO among equal times: determinism
	fn      func()
	stopped bool
	index   int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a single-threaded discrete-event simulator. All callbacks run
// sequentially on the goroutine that calls Run/RunUntil/Step, in
// deterministic (time, scheduling-order) order.
type Sim struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	steps  uint64
}

// New returns a simulator at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current simulated time.
func (s *Sim) Now() time.Duration { return s.now }

// Steps returns how many events have been executed (useful in tests).
func (s *Sim) Steps() uint64 { return s.steps }

// After schedules fn to run d from now. Negative delays run "immediately"
// (at the current time, after already-queued same-time events).
func (s *Sim) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	e := &event{at: s.now + d, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return (*simTimer)(e)
}

// At schedules fn at an absolute simulated time (clamped to now).
func (s *Sim) At(t time.Duration, fn func()) Timer {
	d := t - s.now
	return s.After(d, fn)
}

type simTimer event

func (t *simTimer) Stop() bool {
	if t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Step executes the next pending event; it reports false when the queue is
// empty.
func (s *Sim) Step() bool {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.stopped {
			continue
		}
		if e.at < s.now {
			panic(fmt.Sprintf("sim: event scheduled in the past (%v < %v)", e.at, s.now))
		}
		s.now = e.at
		s.steps++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t stay queued.
func (s *Sim) RunUntil(t time.Duration) {
	for s.events.Len() > 0 {
		// Peek.
		e := s.events[0]
		if e.stopped {
			heap.Pop(&s.events)
			continue
		}
		if e.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor runs the simulation for d more simulated time.
func (s *Sim) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// Pending returns the number of queued (non-cancelled) events.
func (s *Sim) Pending() int {
	n := 0
	for _, e := range s.events {
		if !e.stopped {
			n++
		}
	}
	return n
}

var _ Clock = (*Sim)(nil)

// Wall is a Clock backed by real time, for deployments of RUM as an actual
// TCP proxy. The zero value is not usable; call NewWall.
//
// Positive delays are scheduled on a process-wide hierarchical timer
// wheel (see Wheel) instead of one time.AfterFunc per deadline: the
// timeout and adaptive strategies park one deadline per in-flight rule
// update, and the wheel holds hundreds of thousands of them with O(1)
// insert/cancel and a single ticking goroutine. Deadlines are rounded up
// to the wheel tick (DefaultWheelTick), never down — callbacks may run a
// tick late but never early.
type Wall struct {
	origin time.Time
	wheel  *Wheel
}

// wallWheel is the process-wide deadline wheel shared by every Wall
// clock; its driver goroutine parks itself whenever no deadlines are
// pending, so idle processes (and benchmark loops creating many clocks)
// pay nothing.
var (
	wallWheelOnce sync.Once
	wallWheel     *Wheel
)

func sharedWheel() *Wheel {
	wallWheelOnce.Do(func() { wallWheel = NewWheel(DefaultWheelTick) })
	return wallWheel
}

// NewWall returns a wall clock with its origin at the current time.
func NewWall() *Wall { return &Wall{origin: time.Now(), wheel: sharedWheel()} }

// Now returns time elapsed since the clock was created.
func (w *Wall) Now() time.Duration { return time.Since(w.origin) }

// After schedules fn once d has elapsed. Zero (and negative) delays —
// the dominant case on hot paths like zero-latency transport delivery and
// shard flush handoff — skip all timer machinery and dispatch straight
// onto a fresh goroutine; positive delays go through the shared timer
// wheel.
func (w *Wall) After(d time.Duration, fn func()) Timer {
	if d <= 0 {
		go fn()
		return firedTimer{}
	}
	return w.wheel.Schedule(d, fn)
}

// firedTimer is the Timer of a callback already dispatched: Stop reports
// that the cancellation came too late.
type firedTimer struct{}

func (firedTimer) Stop() bool { return false }

var _ Clock = (*Wall)(nil)
