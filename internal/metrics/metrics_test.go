package metrics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"rum/internal/netsim"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestPercentileAndMean(t *testing.T) {
	samples := []time.Duration{ms(10), ms(20), ms(30), ms(40), ms(50)}
	if got := Percentile(samples, 50); got != ms(30) {
		t.Errorf("p50 = %v, want 30ms", got)
	}
	if got := Percentile(samples, 100); got != ms(50) {
		t.Errorf("p100 = %v, want 50ms", got)
	}
	if got := Percentile(samples, 0); got != ms(10) {
		t.Errorf("p0 = %v, want 10ms", got)
	}
	if got := Mean(samples); got != ms(30) {
		t.Errorf("mean = %v, want 30ms", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty p50 = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	samples := []time.Duration{ms(20), ms(-5), ms(50)}
	if Min(samples) != ms(-5) || Max(samples) != ms(50) {
		t.Errorf("min/max = %v/%v", Min(samples), Max(samples))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty min/max not zero")
	}
}

func TestCDF(t *testing.T) {
	samples := []time.Duration{ms(10), ms(10), ms(20)}
	cdf := CDF(samples)
	if len(cdf) != 2 {
		t.Fatalf("CDF has %d points, want 2", len(cdf))
	}
	if cdf[0].Value != ms(10) || cdf[0].Fraction < 0.66 || cdf[0].Fraction > 0.67 {
		t.Errorf("first point = %+v", cdf[0])
	}
	if cdf[1].Fraction != 1.0 {
		t.Errorf("last fraction = %f, want 1", cdf[1].Fraction)
	}
}

// Property: CDF is monotonically nondecreasing in both axes and ends at 1.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		samples := make([]time.Duration, n)
		for i := range samples {
			samples[i] = time.Duration(r.Intn(1000)) * time.Millisecond
		}
		cdf := CDF(samples)
		if cdf[len(cdf)-1].Fraction != 1.0 {
			return false
		}
		for i := 1; i < len(cdf); i++ {
			if cdf[i].Value <= cdf[i-1].Value || cdf[i].Fraction < cdf[i-1].Fraction {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFractionAtOrBelow(t *testing.T) {
	samples := []time.Duration{ms(10), ms(20), ms(30)}
	if got := FractionAtOrBelow(samples, ms(20)); got < 0.66 || got > 0.67 {
		t.Errorf("F(20ms) = %f", got)
	}
	if got := FractionAtOrBelow(samples, ms(5)); got != 0 {
		t.Errorf("F(5ms) = %f, want 0", got)
	}
	if got := FractionAtOrBelow(nil, 0); got != 0 {
		t.Errorf("empty F = %f", got)
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "bb"}}
	tbl.AddRow("x", "y")
	s := tbl.Render()
	for _, want := range []string{"T", "a", "bb", "x", "y", "--"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestRenderSeries(t *testing.T) {
	s := RenderSeries("title", "x", []Series{
		{Name: "s1", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Name: "s2", X: []float64{2}, Y: []float64{5}},
	})
	if !strings.Contains(s, "s1") || !strings.Contains(s, "10.0000") || !strings.Contains(s, "-") {
		t.Errorf("series rendering wrong:\n%s", s)
	}
}

func TestSparkline(t *testing.T) {
	if s := Sparkline([]float64{0, 1, 2, 3}, 4); len([]rune(s)) != 4 {
		t.Errorf("sparkline = %q", s)
	}
	if Sparkline(nil, 5) != "" {
		t.Error("empty sparkline not empty")
	}
}

func arrival(flow, seq int, at time.Duration, via ...string) netsim.Arrival {
	return netsim.Arrival{FlowID: flow, Seq: seq, At: at, Trace: via}
}

func TestAnalyzeMigration(t *testing.T) {
	isNew := func(a netsim.Arrival) bool { return a.Via("s2") }
	arrivals := []netsim.Arrival{
		arrival(1, 0, ms(0), "h1", "s1", "s3", "h2"),
		arrival(1, 1, ms(4), "h1", "s1", "s3", "h2"),
		// seq 2 and 3 lost
		arrival(1, 4, ms(16), "h1", "s1", "s2", "s3", "h2"),
		arrival(1, 5, ms(20), "h1", "s1", "s2", "s3", "h2"),
	}
	updates := AnalyzeMigration(arrivals, isNew, ms(4))
	if len(updates) != 1 {
		t.Fatalf("got %d updates", len(updates))
	}
	u := updates[0]
	if !u.Switched || u.LastOld != ms(4) || u.FirstNew != ms(16) {
		t.Errorf("update = %+v", u)
	}
	if u.Broken != ms(12) {
		t.Errorf("broken = %v, want 12ms", u.Broken)
	}
	if u.Lost != 2 {
		t.Errorf("lost = %d, want 2", u.Lost)
	}
}

func TestAnalyzeMigrationNoBreak(t *testing.T) {
	isNew := func(a netsim.Arrival) bool { return a.Via("s2") }
	arrivals := []netsim.Arrival{
		arrival(1, 0, ms(0), "s1", "s3"),
		arrival(1, 1, ms(4), "s1", "s2", "s3"),
	}
	updates := AnalyzeMigration(arrivals, isNew, ms(4))
	if updates[0].Broken != 0 {
		t.Errorf("gap at precision should report zero broken, got %v", updates[0].Broken)
	}
	if updates[0].Lost != 0 {
		t.Errorf("lost = %d, want 0", updates[0].Lost)
	}
}

func TestAnalyzeMigrationNeverSwitched(t *testing.T) {
	isNew := func(a netsim.Arrival) bool { return a.Via("s2") }
	arrivals := []netsim.Arrival{arrival(3, 0, ms(0), "s1", "s3")}
	updates := AnalyzeMigration(arrivals, isNew, ms(4))
	if updates[0].Switched {
		t.Error("flow reported switched without new-path arrivals")
	}
	if SwitchedCount(updates) != 0 {
		t.Error("SwitchedCount wrong")
	}
}

func TestAggregates(t *testing.T) {
	ups := []FlowUpdate{
		{FlowID: 1, Switched: true, Broken: ms(10), FirstNew: ms(100), Lost: 2},
		{FlowID: 2, Switched: true, Broken: 0, FirstNew: ms(200), Lost: 0},
		{FlowID: 3, Switched: false, Lost: 1},
	}
	if got := BrokenTimes(ups); len(got) != 2 {
		t.Errorf("BrokenTimes = %v", got)
	}
	if got := UpdateTimes(ups, ms(50)); len(got) != 2 || got[0] != ms(50) {
		t.Errorf("UpdateTimes = %v", got)
	}
	if TotalLost(ups) != 3 {
		t.Errorf("TotalLost = %d", TotalLost(ups))
	}
	if SwitchedCount(ups) != 2 {
		t.Errorf("SwitchedCount = %d", SwitchedCount(ups))
	}
}
