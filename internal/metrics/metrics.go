// Package metrics provides the measurement and presentation helpers the
// experiment harness uses: empirical CDFs, percentiles, per-flow update
// and broken-time extraction from host arrival logs, and plain-text
// rendering of the paper's figures and tables.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Percentile returns the p-th percentile (0..100) of the samples
// (nearest-rank). It returns 0 for an empty slice.
func Percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(p/100*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// Mean returns the arithmetic mean.
func Mean(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range samples {
		sum += v
	}
	return sum / time.Duration(len(samples))
}

// Max returns the maximum sample (0 when empty).
func Max(samples []time.Duration) time.Duration {
	var m time.Duration
	for _, v := range samples {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum sample (0 when empty).
func Min(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	m := samples[0]
	for _, v := range samples[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    time.Duration
	Fraction float64 // cumulative fraction in [0,1]
}

// CDF computes the empirical CDF of the samples.
func CDF(samples []time.Duration) []CDFPoint {
	if len(samples) == 0 {
		return nil
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := make([]CDFPoint, 0, len(s))
	for i, v := range s {
		frac := float64(i+1) / float64(len(s))
		if len(out) > 0 && out[len(out)-1].Value == v {
			out[len(out)-1].Fraction = frac
			continue
		}
		out = append(out, CDFPoint{Value: v, Fraction: frac})
	}
	return out
}

// FractionAtOrBelow returns the CDF value at x.
func FractionAtOrBelow(samples []time.Duration, x time.Duration) float64 {
	if len(samples) == 0 {
		return 0
	}
	n := 0
	for _, v := range samples {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(samples))
}

// Series is a named list of (x, y) rows for figure rendering.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Table renders labeled rows as fixed-width plain text.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// RenderSeries formats series as aligned columns (x then one column per
// series), using NaN-free "-" for missing points; series are sampled at
// the union of their x values.
func RenderSeries(title, xLabel string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	xsSet := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	fmt.Fprintf(&b, "%12s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "  %14s", s.Name)
	}
	b.WriteString("\n")
	lookup := func(s Series, x float64) (float64, bool) {
		for i, sx := range s.X {
			if sx == x {
				return s.Y[i], true
			}
		}
		return 0, false
	}
	for _, x := range xs {
		fmt.Fprintf(&b, "%12.4f", x)
		for _, s := range series {
			if y, ok := lookup(s, x); ok {
				fmt.Fprintf(&b, "  %14.4f", y)
			} else {
				fmt.Fprintf(&b, "  %14s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Sparkline renders values as a compact unicode bar chart (for quick CLI
// visualization of figure shapes).
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	// Downsample to width buckets by averaging.
	buckets := make([]float64, width)
	counts := make([]int, width)
	for i, v := range values {
		b := i * width / len(values)
		buckets[b] += v
		counts[b]++
	}
	maxV := 0.0
	for i := range buckets {
		if counts[i] > 0 {
			buckets[i] /= float64(counts[i])
		}
		if buckets[i] > maxV {
			maxV = buckets[i]
		}
	}
	var sb strings.Builder
	for i := range buckets {
		if counts[i] == 0 {
			sb.WriteRune(' ')
			continue
		}
		idx := 0
		if maxV > 0 {
			idx = int(buckets[i] / maxV * float64(len(blocks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}
