package metrics

import (
	"time"

	"rum/internal/netsim"
)

// FlowUpdate summarizes one flow's behaviour during a path migration, as
// observed at the destination host — the quantities Figures 1b, 6 and 7
// plot.
type FlowUpdate struct {
	FlowID int
	// LastOld is the arrival time of the last packet that travelled the
	// old path before the switch-over (zero when none observed).
	LastOld time.Duration
	// FirstNew is the arrival time of the first packet on the new path
	// (zero when the flow never switched).
	FirstNew time.Duration
	// Broken is the observable outage: FirstNew − LastOld when positive.
	// Values at or below the measurement precision (the inter-packet gap)
	// mean no packet was observably lost.
	Broken time.Duration
	// Lost counts sequence numbers missing at the destination.
	Lost     int
	Switched bool
}

// AnalyzeMigration extracts per-flow update data from a destination
// host's arrivals. oldHop and newHop are the last-hop node names
// identifying the two paths (for the triangle: s3 is the last hop on both
// paths, so the *previous* hop is encoded by the generator via distinct
// hops — callers pass the observable discriminator they chose). precision
// is the traffic inter-packet gap.
func AnalyzeMigration(arrivals []netsim.Arrival, isNewPath func(a netsim.Arrival) bool, precision time.Duration) []FlowUpdate {
	byFlow := make(map[int][]netsim.Arrival)
	for _, a := range arrivals {
		byFlow[a.FlowID] = append(byFlow[a.FlowID], a)
	}
	var out []FlowUpdate
	for fid, arrs := range byFlow {
		fu := FlowUpdate{FlowID: fid}
		var firstNewIdx = -1
		for i, a := range arrs {
			if isNewPath(a) {
				fu.FirstNew = a.At
				fu.Switched = true
				firstNewIdx = i
				break
			}
		}
		if firstNewIdx >= 0 {
			for i := 0; i < firstNewIdx; i++ {
				if !isNewPath(arrs[i]) {
					fu.LastOld = arrs[i].At
				}
			}
			if fu.LastOld > 0 {
				fu.Broken = fu.FirstNew - fu.LastOld
				// A gap equal to the sending period means nothing was
				// lost; report the excess outage only.
				if fu.Broken <= precision {
					fu.Broken = 0
				}
			}
		} else {
			for _, a := range arrs {
				fu.LastOld = a.At
			}
		}
		// Count sequence gaps.
		seen := make(map[int]bool, len(arrs))
		maxSeq := -1
		for _, a := range arrs {
			seen[a.Seq] = true
			if a.Seq > maxSeq {
				maxSeq = a.Seq
			}
		}
		for s := 0; s <= maxSeq; s++ {
			if !seen[s] {
				fu.Lost++
			}
		}
		out = append(out, fu)
	}
	return out
}

// BrokenTimes extracts the broken durations of switched flows.
func BrokenTimes(updates []FlowUpdate) []time.Duration {
	var out []time.Duration
	for _, u := range updates {
		if u.Switched {
			out = append(out, u.Broken)
		}
	}
	return out
}

// UpdateTimes extracts, relative to start, when each flow began following
// its new path.
func UpdateTimes(updates []FlowUpdate, start time.Duration) []time.Duration {
	var out []time.Duration
	for _, u := range updates {
		if u.Switched {
			out = append(out, u.FirstNew-start)
		}
	}
	return out
}

// TotalLost sums lost packets across flows.
func TotalLost(updates []FlowUpdate) int {
	n := 0
	for _, u := range updates {
		n += u.Lost
	}
	return n
}

// SwitchedCount counts flows that reached the new path.
func SwitchedCount(updates []FlowUpdate) int {
	n := 0
	for _, u := range updates {
		if u.Switched {
			n++
		}
	}
	return n
}
