package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"rum/internal/netsim"
)

// TestConcurrentAggregation pins the property the experiment harness
// depends on when per-policy scoring fans out: every aggregation helper
// copies its input before sorting, so many goroutines may share one
// sample slice. Run under -race, this catches any future "optimization"
// that sorts in place.
func TestConcurrentAggregation(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	samples := make([]time.Duration, 4096)
	for i := range samples {
		samples[i] = time.Duration(r.Intn(1_000_000)) * time.Microsecond
	}
	orig := append([]time.Duration(nil), samples...)

	wantP99 := Percentile(samples, 99)
	wantMean := Mean(samples)
	wantFrac := FractionAtOrBelow(samples, 500*time.Millisecond)
	wantCDFLen := len(CDF(samples))

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := Percentile(samples, 99); got != wantP99 {
					t.Errorf("concurrent p99 = %v, want %v", got, wantP99)
					return
				}
				if got := Mean(samples); got != wantMean {
					t.Errorf("concurrent mean = %v, want %v", got, wantMean)
					return
				}
				if got := FractionAtOrBelow(samples, 500*time.Millisecond); got != wantFrac {
					t.Errorf("concurrent fraction = %v, want %v", got, wantFrac)
					return
				}
				if got := len(CDF(samples)); got != wantCDFLen {
					t.Errorf("concurrent CDF has %d points, want %d", got, wantCDFLen)
					return
				}
				_ = Min(samples)
				_ = Max(samples)
			}
		}()
	}
	wg.Wait()

	for i := range samples {
		if samples[i] != orig[i] {
			t.Fatalf("shared sample slice mutated at index %d: %v != %v", i, samples[i], orig[i])
		}
	}
}

// TestConcurrentAnalyzeMigration shares one arrival log across parallel
// AnalyzeMigration calls — the shape the harness takes when scoring the
// same run against several flow predicates at once.
func TestConcurrentAnalyzeMigration(t *testing.T) {
	var arrivals []netsim.Arrival
	for flow := 0; flow < 32; flow++ {
		for seq := 0; seq < 20; seq++ {
			hops := []string{"h1", "s1", "s3", "h2"}
			if seq >= 10 {
				hops = []string{"h1", "s1", "s2", "s3", "h2"}
			}
			arrivals = append(arrivals, netsim.Arrival{
				FlowID: flow, Seq: seq,
				At:    time.Duration(seq) * 4 * time.Millisecond,
				Trace: hops,
			})
		}
	}
	isNew := func(a netsim.Arrival) bool { return a.Via("s2") }

	want := AnalyzeMigration(arrivals, isNew, 4*time.Millisecond)
	wantSwitched, wantLost := SwitchedCount(want), TotalLost(want)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				ups := AnalyzeMigration(arrivals, isNew, 4*time.Millisecond)
				if len(ups) != len(want) {
					t.Errorf("concurrent analysis found %d flows, want %d", len(ups), len(want))
					return
				}
				if got := SwitchedCount(ups); got != wantSwitched {
					t.Errorf("concurrent switched count = %d, want %d", got, wantSwitched)
					return
				}
				if got := TotalLost(ups); got != wantLost {
					t.Errorf("concurrent lost count = %d, want %d", got, wantLost)
					return
				}
			}
		}()
	}
	wg.Wait()
}
