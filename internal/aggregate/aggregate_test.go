package aggregate

import (
	"fmt"
	"net/netip"
	"testing"

	"rum/internal/hsa"
	"rum/internal/of"
	"rum/internal/packet"
)

func dstMatch(a, b, c, d byte, bits int) of.Match {
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = packet.EtherTypeIPv4
	m.SetNWDst(netip.AddrFrom4([4]byte{a, b, c, d}))
	m.SetNWDstWildBits(32 - bits)
	return m
}

func addMod(m of.Match, prio uint16, port uint16) *of.FlowMod {
	return &of.FlowMod{
		Command:  of.FCAdd,
		Match:    m,
		Priority: prio,
		BufferID: of.BufferNone,
		OutPort:  of.PortNone,
		Actions:  []of.Action{of.ActionOutput{Port: port}},
	}
}

func delStrict(m of.Match, prio uint16) *of.FlowMod {
	return &of.FlowMod{
		Command:  of.FCDeleteStrict,
		Match:    m,
		Priority: prio,
		BufferID: of.BufferNone,
		OutPort:  of.PortNone,
	}
}

func mustClean(t *testing.T, tb *Table) {
	t.Helper()
	if bad := tb.VerifyFull(); bad != 0 {
		t.Fatalf("VerifyFull found %d counterexamples", bad)
	}
	if s := tb.Stats(); s.Counterexamples != 0 {
		t.Fatalf("unrepaired counterexamples: %d", s.Counterexamples)
	}
}

// Eight aligned /32 routes with one action collapse to a single /29 and
// every logical future anchors on a physical install op.
func TestMergesAlignedSiblings(t *testing.T) {
	tb := New()
	installs, mergedInstalls, maxOps := 0, 0, 0
	for i := 0; i < 8; i++ {
		d := tb.Apply(addMod(dstMatch(10, 0, 0, byte(i), 32), 100, 3))
		if len(d.Anchors) != 1 {
			t.Fatalf("want 1 anchor, got %d", len(d.Anchors))
		}
		a := d.Anchors[0]
		if len(a.Ops) == 0 && len(a.Covered) == 0 {
			t.Fatalf("add %d: anchor settled with no physical backing", i)
		}
		if len(d.Ops) > maxOps {
			maxOps = len(d.Ops)
		}
		for _, op := range d.Ops {
			if op.Install {
				installs++
				if op.Ref.Pfx.Bits < 32 {
					mergedInstalls++
				}
			}
		}
		mustClean(t, tb)
	}
	s := tb.Stats()
	if s.LogicalRules != 8 || s.PhysicalRules != 1 {
		t.Fatalf("want 8 logical / 1 physical, got %d / %d", s.LogicalRules, s.PhysicalRules)
	}
	if got := s.Ratio(); got != 8 {
		t.Fatalf("want ratio 8, got %v", got)
	}
	phys := tb.PhysicalRules()
	if wb := phys[0].Match.NWDstWildBits(); wb != 3 {
		t.Fatalf("want /29 physical rule (3 wild bits), got %d", wb)
	}
	// Incremental: each add yields exactly one install (of the freshly
	// merged cover) and the per-batch delta stays small — never a full
	// recomputation of the table.
	if installs != 8 {
		t.Fatalf("want one install per add, got %d total", installs)
	}
	if mergedInstalls == 0 {
		t.Fatal("no merged covers were ever installed")
	}
	if maxOps > 4 {
		t.Fatalf("a single add produced %d ops; delta is not incremental", maxOps)
	}
}

// Deleting one leaf out of a merged parent splits the parent into the
// exact cover of the seven survivors, and the delete future anchors on the
// remove op of the old parent.
func TestDeleteSplitsMergedParent(t *testing.T) {
	tb := New()
	for i := 0; i < 8; i++ {
		tb.Apply(addMod(dstMatch(10, 0, 0, byte(i), 32), 100, 3))
	}
	d := tb.Apply(delStrict(dstMatch(10, 0, 0, 5, 32), 100))
	var removeIdx = -1
	for i, op := range d.Ops {
		if !op.Install {
			if removeIdx != -1 {
				t.Fatalf("want exactly one remove op, got several")
			}
			removeIdx = i
		}
	}
	if removeIdx == -1 {
		t.Fatal("split emitted no remove op")
	}
	a := d.Anchors[0]
	found := false
	for _, idx := range a.Ops {
		if idx == removeIdx {
			found = true
		}
	}
	if !found {
		t.Fatalf("delete anchor %+v does not include the remove op %d", a, removeIdx)
	}
	// Installs must precede removes so the wire order over-covers.
	for _, idx := range a.Ops {
		if d.Ops[idx].Install && idx > removeIdx {
			t.Fatalf("install op %d ordered after remove %d", idx, removeIdx)
		}
	}
	s := tb.Stats()
	if s.LogicalRules != 7 {
		t.Fatalf("want 7 logical rules, got %d", s.LogicalRules)
	}
	// Exact cover of {0..4,6,7} = /30 + /31 (0-3, 6-7) + /32 (4).
	if s.PhysicalRules != 3 {
		t.Fatalf("want 3 physical rules after split, got %d", s.PhysicalRules)
	}
	mustClean(t, tb)
}

// Modifying one leaf's action splits its parent; modifying it back
// re-merges to the original single cover.
func TestModifySplitsAndRemerges(t *testing.T) {
	tb := New()
	for i := 0; i < 4; i++ {
		tb.Apply(addMod(dstMatch(10, 0, 0, byte(i), 32), 100, 3))
	}
	if s := tb.Stats(); s.PhysicalRules != 1 {
		t.Fatalf("setup: want 1 physical rule, got %d", s.PhysicalRules)
	}
	tb.Apply(addMod(dstMatch(10, 0, 0, 2, 32), 100, 9)) // replace: new port
	mustClean(t, tb)
	if s := tb.Stats(); s.PhysicalRules != 3 {
		t.Fatalf("after divergence: want 3 physical rules, got %d", s.PhysicalRules)
	}
	tb.Apply(addMod(dstMatch(10, 0, 0, 2, 32), 100, 3)) // back
	mustClean(t, tb)
	if s := tb.Stats(); s.PhysicalRules != 1 {
		t.Fatalf("after re-merge: want 1 physical rule, got %d", s.PhysicalRules)
	}
}

// Nested prefixes within one key must not merge (the insertion-order
// tie-break is load-bearing); the key degrades to bypass.
func TestNestedPrefixesBypass(t *testing.T) {
	tb := New()
	tb.Apply(addMod(dstMatch(10, 0, 0, 0, 24), 100, 1))
	tb.Apply(addMod(dstMatch(10, 0, 0, 7, 32), 100, 2))
	s := tb.Stats()
	if s.Bypassed != 1 {
		t.Fatalf("want 1 bypassed key, got %d", s.Bypassed)
	}
	if s.PhysicalRules != 2 {
		t.Fatalf("bypass must mirror logical 1:1, got %d physical", s.PhysicalRules)
	}
	mustClean(t, tb)
	// Removing the nested rule lifts the bypass again.
	tb.Apply(delStrict(dstMatch(10, 0, 0, 7, 32), 100))
	if s := tb.Stats(); s.Bypassed != 0 {
		t.Fatalf("bypass not lifted, %d keys still bypassed", s.Bypassed)
	}
	mustClean(t, tb)
}

// A same-priority rule from a different key that should win an
// insertion-order tie inside a merged region is a genuine counterexample;
// the verifier must catch it and repair by bypassing, leaving zero
// unrepaired counterexamples.
func TestCrossKeyTieRepairedByBypass(t *testing.T) {
	tb := New()
	// Key A: dst-only rules, out:1.
	tb.Apply(addMod(dstMatch(10, 0, 0, 0, 32), 100, 1))
	// Key B: src-qualified rule over one of A's addresses, out:2,
	// inserted before A's second rule — it must win the tie for
	// (src 1.2.3.4 → 10.0.0.1) packets.
	mb := dstMatch(10, 0, 0, 1, 32)
	mb.SetNWSrc(netip.AddrFrom4([4]byte{1, 2, 3, 4}))
	tb.Apply(addMod(mb, 100, 2))
	// A's second rule: merging 10.0.0.0/32+10.0.0.1/32 into /31 with A's
	// earlier insertion order would shadow B.
	tb.Apply(addMod(dstMatch(10, 0, 0, 1, 32), 100, 1))
	mustClean(t, tb)
	f := packet.Fields{
		DLType: packet.EtherTypeIPv4,
		NWSrc:  [4]byte{1, 2, 3, 4},
		NWDst:  [4]byte{10, 0, 0, 1},
	}
	phys := tb.PhysicalRules()
	var winner *of.Action
	for i := range phys {
		if hsa.Covers(phys[i].Match, f) {
			winner = &phys[i].Actions[0]
			break
		}
	}
	if winner == nil {
		t.Fatal("physical table misses the contested packet")
	}
	if out, ok := (*winner).(of.ActionOutput); !ok || out.Port != 2 {
		t.Fatalf("contested packet forwarded to %+v, want out:2", *winner)
	}
}

// Re-adding an identical rule changes nothing physically: the anchor folds
// into the existing covering physical rule.
func TestIdenticalReAddAnchorsCovered(t *testing.T) {
	tb := New()
	tb.Apply(addMod(dstMatch(10, 0, 0, 0, 32), 100, 3))
	d := tb.Apply(addMod(dstMatch(10, 0, 0, 0, 32), 100, 3))
	if len(d.Ops) != 0 {
		t.Fatalf("identical re-add emitted %d ops", len(d.Ops))
	}
	a := d.Anchors[0]
	if len(a.Covered) != 1 || len(a.Ops) != 0 {
		t.Fatalf("want a single Covered anchor, got %+v", a)
	}
}

// Deleting a rule that does not exist settles immediately.
func TestNoopDeleteSettles(t *testing.T) {
	tb := New()
	d := tb.Apply(delStrict(dstMatch(10, 9, 9, 9, 32), 100))
	if len(d.Ops) != 0 || !d.Anchors[0].Settled() {
		t.Fatalf("no-op delete: ops=%d anchor=%+v", len(d.Ops), d.Anchors[0])
	}
}

// A wildcard delete spanning several keys anchors on every covering
// remove op.
func TestWildcardDeleteFansAcrossKeys(t *testing.T) {
	tb := New()
	tb.Apply(addMod(dstMatch(10, 0, 0, 1, 32), 100, 1))
	tb.Apply(addMod(dstMatch(10, 0, 0, 2, 32), 200, 2))
	del := &of.FlowMod{
		Command:  of.FCDelete,
		Match:    dstMatch(10, 0, 0, 0, 24),
		BufferID: of.BufferNone,
		OutPort:  of.PortNone,
	}
	d := tb.Apply(del)
	removes := 0
	for _, op := range d.Ops {
		if !op.Install {
			removes++
		}
	}
	if removes != 2 {
		t.Fatalf("want 2 removes, got %d", removes)
	}
	if len(d.Anchors[0].Ops) != 2 {
		t.Fatalf("want the delete anchored on both removes, got %+v", d.Anchors[0])
	}
	if s := tb.Stats(); s.LogicalRules != 0 || s.PhysicalRules != 0 {
		t.Fatalf("tables not empty after wildcard delete: %+v", s)
	}
	mustClean(t, tb)
}

// The same logical input sequence must produce byte-identical deltas —
// seed-replayable traces depend on it.
func TestDeltaDeterminism(t *testing.T) {
	runOnce := func() string {
		tb := New()
		out := ""
		var batch []*of.FlowMod
		for i := 0; i < 32; i++ {
			batch = append(batch, addMod(dstMatch(10, 0, byte(i/16), byte(i%16), 32), 100, uint16(1+i/16)))
			if len(batch) == 4 {
				d := tb.ApplyBatch(batch)
				for _, op := range d.Ops {
					out += fmt.Sprintf("%v|%v|%d;", op.Install, op.Ref.Pfx, op.Ref.Key.Priority)
				}
				out += "\n"
				batch = nil
			}
		}
		return out
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("delta trace not deterministic:\n%s\nvs\n%s", a, b)
	}
}
