package aggregate

import (
	"net/netip"
	"testing"

	"rum/internal/hsa"
	"rum/internal/of"
	"rum/internal/packet"
)

// FuzzAggregateEquivalence drives random logical rule churn — adds,
// modifies, strict and wildcard deletes over a small, collision-rich
// address space — through the aggregator and requires that (a) every
// batch verifies with zero unrepaired counterexamples, (b) a full
// from-scratch HSA proof of the final table passes, and (c) de-aggregation
// round-trips: deleting everything leaves an empty physical table.
func FuzzAggregateEquivalence(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x42, 0x93, 0x07, 0xff, 0x20, 0x01})
	f.Add([]byte{0x80, 0x80, 0x81, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07})
	f.Add([]byte{0xc0, 0x3f, 0x55, 0xaa, 0x00, 0x10, 0x20, 0x30, 0x40})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		tb := New()
		var mods []*of.FlowMod
		var batch []*of.FlowMod
		flush := func() {
			if len(batch) == 0 {
				return
			}
			tb.ApplyBatch(batch)
			batch = nil
		}
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			// Tiny spaces on purpose: 16 addresses, 3 prefix lengths,
			// 2 priorities, 2 src shapes, 3 ports — collisions, merges,
			// splits, nesting, and cross-key ties all become likely.
			addr := arg & 0x0f
			bits := []int{32, 31, 30}[int(arg>>4)%3]
			prio := uint16(100 + 10*int(op>>6&1))
			port := uint16(1 + int(op>>4&1) + int(op>>5&1))
			m := dstMatch(10, 0, 0, addr, bits)
			if op&0x08 != 0 {
				m.SetNWSrc(netip.AddrFrom4([4]byte{1, 2, 3, 4}))
			}
			var fm *of.FlowMod
			switch op & 0x07 {
			case 0, 1, 2, 3, 4: // add / replace
				fm = addMod(m, prio, port)
			case 5: // strict delete
				fm = delStrict(m, prio)
			case 6: // wildcard delete
				fm = &of.FlowMod{Command: of.FCDelete, Match: m, BufferID: of.BufferNone, OutPort: of.PortNone}
			default: // modify
				fm = &of.FlowMod{Command: of.FCModify, Match: m, Priority: prio,
					BufferID: of.BufferNone, OutPort: of.PortNone,
					Actions: []of.Action{of.ActionOutput{Port: port}}}
			}
			mods = append(mods, fm)
			batch = append(batch, fm)
			if op&0x30 == 0x30 {
				flush()
			}
		}
		flush()
		if bad := tb.VerifyFull(); bad != 0 {
			t.Fatalf("VerifyFull: %d counterexamples after %d mods", bad, len(mods))
		}
		if s := tb.Stats(); s.Counterexamples != 0 {
			t.Fatalf("unrepaired batch counterexamples: %d", s.Counterexamples)
		}
		// The physical table must forward like the logical one on a probe
		// sweep of the whole fuzzed address space, both src shapes.
		phys := tb.PhysicalRules()
		logical := tb.LogicalRules()
		for a := 0; a < 16; a++ {
			for _, src := range [][4]byte{{9, 9, 9, 9}, {1, 2, 3, 4}} {
				fl := packet.Fields{DLType: packet.EtherTypeIPv4, NWSrc: src, NWDst: [4]byte{10, 0, 0, byte(a)}}
				lw := winner(logical, fl)
				pw := winner(phys, fl)
				if (lw == nil) != (pw == nil) || (lw != nil && !of.ActionsEqual(lw, pw)) {
					t.Fatalf("probe %v: logical %v physical %v", fl.NWDst, lw, pw)
				}
			}
		}
		// De-aggregation round-trip: drain the logical table.
		wipe := &of.FlowMod{Command: of.FCDelete, Match: of.MatchAll(), BufferID: of.BufferNone, OutPort: of.PortNone}
		tb.Apply(wipe)
		if s := tb.Stats(); s.LogicalRules != 0 || s.PhysicalRules != 0 {
			t.Fatalf("wipe left %d logical / %d physical rules", s.LogicalRules, s.PhysicalRules)
		}
	})
}

// winner returns the actions of the first covering rule in lookup order.
func winner(rules []hsa.Rule, f packet.Fields) []of.Action {
	for i := range rules {
		if hsa.Covers(rules[i].Match, f) {
			return rules[i].Actions
		}
	}
	return nil
}
