// Package aggregate maintains a logical flow table alongside a compressed
// physical table, FAQS-style: rules that differ only in their IPv4
// destination prefix and share an action list are merged into covering
// prefixes, incrementally on each mutation — no full recomputation. Every
// mutation batch yields a Delta of physical FlowMods plus, for each logical
// input, an Anchor describing which physical operations must be
// acknowledged before the logical update may truthfully be confirmed.
//
// The compression is lossless by construction: a merged physical rule's
// region is always the exact union of the logical leaves beneath it (both
// children of a trie node must be fully covered with equal actions before
// the parent replaces them), so table misses and lower-priority fallthrough
// behave identically in both tables. Where exactness cannot be maintained
// cheaply — nested logical prefixes inside one key, or a cross-key
// same-priority overlap detected by the verifier — the key degrades to
// bypass mode (physical = logical, rule for rule), which is trivially
// equivalent. Equivalence is checked by internal/hsa witnesses on every
// batch; see verify.go.
//
// Only the NWDst prefix dimension is aggregated: rules share a key when
// their priority and every non-NWDst match field agree, which is the
// FIB-aggregation shape from the paper's setting (destination-routed
// fabrics). Anything else is carried 1:1 and still benefits from the
// uniform ack fan-in plumbing.
package aggregate

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"rum/internal/flowtable"
	"rum/internal/hsa"
	"rum/internal/of"
)

// Key identifies one aggregation domain: all logical rules whose match
// differs only in the NWDst prefix and whose priority is identical.
type Key struct {
	// Shape is the rule's match with NWDst fully wildcarded and
	// normalized, so it compares with ==.
	Shape    of.Match
	Priority uint16
}

// Prefix is an IPv4 destination prefix: the high Bits bits of Addr are
// significant, the rest are zero.
type Prefix struct {
	Addr uint32
	Bits int
}

// contains reports whether p's region includes q's region.
func (p Prefix) contains(q Prefix) bool {
	if p.Bits > q.Bits {
		return false
	}
	if p.Bits == 0 {
		return true
	}
	shift := uint(32 - p.Bits)
	return q.Addr>>shift == p.Addr>>shift
}

// sibling returns the prefix that shares p's parent (undefined for /0).
func (p Prefix) sibling() Prefix {
	return Prefix{Addr: p.Addr ^ (1 << uint(32-p.Bits)), Bits: p.Bits}
}

// parent returns the covering prefix one bit shorter.
func (p Prefix) parent() Prefix {
	bits := p.Bits - 1
	if bits <= 0 {
		return Prefix{}
	}
	mask := ^uint32(0) << uint(32-bits)
	return Prefix{Addr: p.Addr & mask, Bits: bits}
}

func (p Prefix) String() string {
	b := [4]byte{}
	binary.BigEndian.PutUint32(b[:], p.Addr)
	return fmt.Sprintf("%d.%d.%d.%d/%d", b[0], b[1], b[2], b[3], p.Bits)
}

// PhysRef names one physical rule: a prefix within a key.
type PhysRef struct {
	Key Key
	Pfx Prefix
}

// Op is one physical table operation the caller must issue to the switch.
type Op struct {
	// FM is the ready-to-send physical FlowMod (FCAdd or FCDeleteStrict).
	// The xid is unset; the caller assigns one before sending.
	FM      *of.FlowMod
	Ref     PhysRef
	Install bool
}

// Anchor ties one logical input FlowMod to the physical state that must
// settle before its acknowledgment is truthful. Ops lists indices into
// Delta.Ops that must all confirm; Covered lists pre-existing physical
// rules the logical rule folded into (which may still be in flight at the
// caller). When both are empty the logical update required no physical
// change at all and may be confirmed as soon as the batch is issued.
type Anchor struct {
	Ops     []int
	Covered []PhysRef
}

// Settled reports whether the anchor needs no physical confirmation.
func (a Anchor) Settled() bool { return len(a.Ops) == 0 && len(a.Covered) == 0 }

// Delta is the physical effect of one logical mutation batch. Ops are
// ordered installs-first so that, issued in order over a FIFO channel, the
// switch table transiently over-covers rather than under-covers (a parent
// and its replacement children briefly coexist; packets never fall
// through). Anchors[i] corresponds to the i'th logical input FlowMod.
type Delta struct {
	Ops     []Op
	Anchors []Anchor
}

type leaf struct {
	actions []of.Action
	order   uint64
}

type physRule struct {
	actions []of.Action
	order   uint64
}

type keyState struct {
	id     uint64 // creation order, for deterministic op sorting
	leaves map[Prefix]*leaf
	phys   map[Prefix]physRule
	// nested counts containment pairs among distinct leaves; while
	// nonzero the key runs in bypass mode (merging nested same-priority
	// prefixes would reorder the insertion-order tie-break).
	nested int
	// forced marks a verifier-demanded bypass (sticky): a counterexample
	// traced to this key's merged rules.
	forced bool
}

func (ks *keyState) bypass() bool { return ks.nested > 0 || ks.forced }

// Stats is a snapshot of the aggregator's counters.
type Stats struct {
	LogicalRules    int
	PhysicalRules   int
	LogicalOps      uint64 // logical FlowMods applied
	PhysicalOps     uint64 // physical ops emitted
	Batches         uint64
	Witnesses       uint64 // witness packets checked by the per-batch verifier
	Bypassed        int    // keys currently in bypass mode
	Counterexamples uint64 // verification failures bypass could not repair (must stay 0)
}

// Ratio returns logical/physical rule count (the compression ratio), or 0
// when the physical table is empty.
func (s Stats) Ratio() float64 {
	if s.PhysicalRules == 0 {
		return 0
	}
	return float64(s.LogicalRules) / float64(s.PhysicalRules)
}

// Table is the logical/physical pair. Safe for concurrent use.
type Table struct {
	mu      sync.Mutex
	logical *flowtable.Table
	keys    map[Key]*keyState
	order   uint64 // leaf insertion stamps, mirroring logical order
	nextKey uint64

	physList  []physListEntry // lazy priority-ordered physical snapshot
	physDirty bool

	logicalOps      uint64
	physicalOps     uint64
	batches         uint64
	witnesses       uint64
	counterexamples uint64
}

type physListEntry struct {
	key     Key
	pfx     Prefix
	match   of.Match
	prio    uint16
	order   uint64
	actions []of.Action
}

// New returns an empty aggregating table.
func New() *Table {
	return &Table{
		logical: flowtable.New(),
		keys:    make(map[Key]*keyState),
	}
}

// keyOf splits a normalized match into its aggregation key and prefix.
func keyOf(m of.Match, prio uint16) (Key, Prefix) {
	bits := 32 - m.NWDstWildBits()
	pfx := Prefix{Addr: binary.BigEndian.Uint32(m.NWDst[:]), Bits: bits}
	shape := m
	shape.SetNWDstWildBits(32)
	return Key{Shape: shape.Normalize(), Priority: prio}, pfx
}

// matchFor reassembles the concrete match of a physical rule.
func matchFor(k Key, p Prefix) of.Match {
	m := k.Shape
	binary.BigEndian.PutUint32(m.NWDst[:], p.Addr)
	m.SetNWDstWildBits(32 - p.Bits)
	return m.Normalize()
}

// Apply runs a single logical FlowMod; see ApplyBatch.
func (t *Table) Apply(fm *of.FlowMod) Delta {
	return t.ApplyBatch([]*of.FlowMod{fm})
}

// ApplyBatch applies a batch of logical FlowMods to the logical table,
// incrementally updates the physical table, verifies equivalence, and
// returns the physical Delta with per-input Anchors.
func (t *Table) ApplyBatch(mods []*of.FlowMod) Delta {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.batches++

	// Snapshot the physical set of every key the batch touches, so the
	// final diff sees through intra-batch churn.
	before := make(map[Key]map[Prefix]physRule)
	snapshot := func(k Key, ks *keyState) {
		if _, ok := before[k]; ok {
			return
		}
		cp := make(map[Prefix]physRule, len(ks.phys))
		for p, r := range ks.phys {
			cp[p] = r
		}
		before[k] = cp
	}

	changedPerMod := make([][]flowtable.ChangedRule, len(mods))
	for i, fm := range mods {
		t.logicalOps++
		changed := t.logical.Apply(fm)
		changedPerMod[i] = changed
		for _, cr := range changed {
			k, p := keyOf(cr.Match, cr.Priority)
			ks := t.keys[k]
			if ks == nil {
				ks = &keyState{
					id:     t.nextKey,
					leaves: make(map[Prefix]*leaf),
					phys:   make(map[Prefix]physRule),
				}
				t.nextKey++
				t.keys[k] = ks
			}
			snapshot(k, ks)
			if cr.Deleted {
				t.removeLeaf(ks, p)
			} else {
				e := t.logical.Find(cr.Match, cr.Priority)
				if e == nil {
					continue // racing external delete; nothing to mirror
				}
				t.upsertLeaf(ks, p, e.Actions)
			}
		}
	}

	ops, opIdx := t.diffLocked(before)

	// Per-batch equivalence verification; a counterexample forces the
	// offending key into bypass and re-diffs, so the returned ops always
	// describe a verified-equivalent physical table.
	ops, opIdx = t.verifyBatchLocked(before, ops, opIdx)

	t.physicalOps += uint64(len(ops))
	return Delta{Ops: ops, Anchors: t.anchorsLocked(changedPerMod, before, ops, opIdx)}
}

// upsertLeaf installs or refreshes a logical leaf and incrementally
// repairs the key's physical cover.
func (t *Table) upsertLeaf(ks *keyState, p Prefix, actions []of.Action) {
	acts := append([]of.Action(nil), actions...)
	if lf, ok := ks.leaves[p]; ok {
		if of.ActionsEqual(lf.actions, acts) {
			return
		}
		lf.actions = acts
		if ks.bypass() {
			ks.phys[p] = physRule{actions: acts, order: lf.order}
			t.physDirty = true
			return
		}
		t.repairCover(ks, p)
		return
	}
	lf := &leaf{actions: acts, order: t.order}
	t.order++
	wasBypass := ks.bypass()
	for q := range ks.leaves {
		if p.contains(q) || q.contains(p) {
			ks.nested++
		}
	}
	ks.leaves[p] = lf
	if ks.bypass() != wasBypass {
		t.rebuildKey(ks)
		return
	}
	if ks.bypass() {
		ks.phys[p] = physRule{actions: acts, order: lf.order}
		t.physDirty = true
		return
	}
	t.repairCover(ks, p)
}

// removeLeaf drops a logical leaf and incrementally repairs the cover.
func (t *Table) removeLeaf(ks *keyState, p Prefix) {
	if _, ok := ks.leaves[p]; !ok {
		return
	}
	wasBypass := ks.bypass()
	delete(ks.leaves, p)
	for q := range ks.leaves {
		if p.contains(q) || q.contains(p) {
			ks.nested--
		}
	}
	if ks.bypass() != wasBypass {
		t.rebuildKey(ks)
		return
	}
	if ks.bypass() {
		delete(ks.phys, p)
		t.physDirty = true
		return
	}
	cover, ok := t.coveringPhys(ks, p)
	if !ok {
		return
	}
	delete(ks.phys, cover)
	t.physDirty = true
	if cover != p {
		// The merged parent lost a leaf: rebuild the exact cover of the
		// remaining leaves beneath it. The result cannot be exact at
		// cover (p's region is now a hole), so no upward merge follows.
		t.buildRegion(ks, cover)
	}
}

// repairCover restores the exact-cover invariant around a new or changed
// leaf p in merged mode.
func (t *Table) repairCover(ks *keyState, p Prefix) {
	t.physDirty = true
	cover, ok := t.coveringPhys(ks, p)
	if !ok {
		lf := ks.leaves[p]
		ks.phys[p] = physRule{actions: lf.actions, order: lf.order}
		t.mergeUp(ks, p)
		return
	}
	if of.ActionsEqual(ks.phys[cover].actions, ks.leaves[p].actions) {
		return // already represented (no-op modify)
	}
	delete(ks.phys, cover)
	if t.buildRegion(ks, cover) {
		// The rebuilt region is again a single exact uniform node at
		// cover (an isolated leaf changed actions); it may now merge
		// with its sibling.
		t.mergeUp(ks, cover)
	}
}

// coveringPhys finds the physical rule covering p (exact or ancestor).
// Physical rules within a merged key are disjoint, so it is unique.
func (t *Table) coveringPhys(ks *keyState, p Prefix) (Prefix, bool) {
	q := p
	for {
		if _, ok := ks.phys[q]; ok {
			return q, true
		}
		if q.Bits == 0 {
			return Prefix{}, false
		}
		q = q.parent()
	}
}

// mergeUp greedily merges p with its sibling while both are exact uniform
// covers with equal actions.
func (t *Table) mergeUp(ks *keyState, p Prefix) {
	for p.Bits > 0 {
		s := p.sibling()
		pr, okP := ks.phys[p]
		sr, okS := ks.phys[s]
		if !okP || !okS || !of.ActionsEqual(pr.actions, sr.actions) {
			return
		}
		delete(ks.phys, p)
		delete(ks.phys, s)
		order := pr.order
		if sr.order < order {
			order = sr.order
		}
		parent := p.parent()
		ks.phys[parent] = physRule{actions: pr.actions, order: order}
		p = parent
	}
}

// buildRegion recomputes the canonical exact cover of the leaves under
// region and installs it. When the whole region collapses to one exact
// uniform node at region itself, that node is installed and true is
// returned (the caller may then attempt an upward merge); otherwise every
// maximal exact uniform subtree strictly below region is materialized.
func (t *Table) buildRegion(ks *keyState, region Prefix) bool {
	var under []Prefix
	for q := range ks.leaves {
		if region.contains(q) {
			under = append(under, q)
		}
	}
	t.physDirty = true
	// build returns (exact, actions, minOrder) for the subtree and
	// installs nothing while the subtree is exact — the caller decides
	// whether to keep merging or materialize. On a non-exact return,
	// every maximal exact subtree beneath has already been materialized.
	var build func(region Prefix, ls []Prefix) (bool, []of.Action, uint64)
	build = func(region Prefix, ls []Prefix) (bool, []of.Action, uint64) {
		if len(ls) == 0 {
			return false, nil, 0
		}
		if len(ls) == 1 && ls[0] == region {
			lf := ks.leaves[ls[0]]
			return true, lf.actions, lf.order
		}
		// region.Bits < 32 here: distinct leaves under one /32 region
		// are impossible, and a leaf wider than region cannot occur in
		// merged mode (nested leaves force bypass).
		bit := uint32(1) << uint(31-region.Bits)
		left := Prefix{Addr: region.Addr, Bits: region.Bits + 1}
		right := Prefix{Addr: region.Addr | bit, Bits: region.Bits + 1}
		var ll, rl []Prefix
		for _, q := range ls {
			if q.Addr&bit == 0 {
				ll = append(ll, q)
			} else {
				rl = append(rl, q)
			}
		}
		lx, la, lo := build(left, ll)
		rx, ra, ro := build(right, rl)
		if lx && rx && of.ActionsEqual(la, ra) {
			order := lo
			if ro < order {
				order = ro
			}
			return true, la, order
		}
		if lx {
			ks.phys[left] = physRule{actions: la, order: lo}
		}
		if rx {
			ks.phys[right] = physRule{actions: ra, order: ro}
		}
		return false, nil, 0
	}
	exact, acts, order := build(region, under)
	if exact {
		ks.phys[region] = physRule{actions: acts, order: order}
	}
	return exact
}

// rebuildKey recomputes a key's whole physical set after a bypass-mode
// transition (nested prefixes appearing/disappearing, or a verifier
// bypass).
func (t *Table) rebuildKey(ks *keyState) {
	ks.phys = make(map[Prefix]physRule, len(ks.leaves))
	t.physDirty = true
	if ks.bypass() {
		for p, lf := range ks.leaves {
			ks.phys[p] = physRule{actions: lf.actions, order: lf.order}
		}
		return
	}
	if len(ks.leaves) == 0 {
		return
	}
	t.buildRegion(ks, Prefix{})
}

// diffLocked compares each snapshotted key's physical set against its
// current state and emits canonical install-then-remove ops. opIdx maps
// PhysRef → index into ops for anchor resolution.
func (t *Table) diffLocked(before map[Key]map[Prefix]physRule) ([]Op, map[PhysRef]int) {
	type pending struct {
		ref     PhysRef
		keyID   uint64
		install bool
		actions []of.Action
	}
	var installs, removes []pending
	for k, old := range before {
		ks := t.keys[k]
		for p, r := range ks.phys {
			if o, ok := old[p]; !ok || !of.ActionsEqual(o.actions, r.actions) {
				installs = append(installs, pending{ref: PhysRef{Key: k, Pfx: p}, keyID: ks.id, install: true, actions: r.actions})
			}
		}
		for p := range old {
			if _, ok := ks.phys[p]; !ok {
				removes = append(removes, pending{ref: PhysRef{Key: k, Pfx: p}, keyID: ks.id})
			}
		}
	}
	order := func(a, b pending) bool {
		if a.keyID != b.keyID {
			return a.keyID < b.keyID
		}
		if a.ref.Pfx.Bits != b.ref.Pfx.Bits {
			return a.ref.Pfx.Bits < b.ref.Pfx.Bits
		}
		return a.ref.Pfx.Addr < b.ref.Pfx.Addr
	}
	sort.Slice(installs, func(i, j int) bool { return order(installs[i], installs[j]) })
	sort.Slice(removes, func(i, j int) bool { return order(removes[i], removes[j]) })
	ops := make([]Op, 0, len(installs)+len(removes))
	opIdx := make(map[PhysRef]int, cap(ops))
	for _, p := range installs {
		fm := &of.FlowMod{
			Command:  of.FCAdd,
			Match:    matchFor(p.ref.Key, p.ref.Pfx),
			Priority: p.ref.Key.Priority,
			BufferID: of.BufferNone,
			OutPort:  of.PortNone,
			Actions:  append([]of.Action(nil), p.actions...),
		}
		opIdx[p.ref] = len(ops)
		ops = append(ops, Op{FM: fm, Ref: p.ref, Install: true})
	}
	for _, p := range removes {
		fm := &of.FlowMod{
			Command:  of.FCDeleteStrict,
			Match:    matchFor(p.ref.Key, p.ref.Pfx),
			Priority: p.ref.Key.Priority,
			BufferID: of.BufferNone,
			OutPort:  of.PortNone,
		}
		opIdx[p.ref] = len(ops)
		ops = append(ops, Op{FM: fm, Ref: p.ref})
	}
	return ops, opIdx
}

// anchorsLocked resolves each logical input's anchor against the final
// delta.
func (t *Table) anchorsLocked(changedPerMod [][]flowtable.ChangedRule, before map[Key]map[Prefix]physRule, ops []Op, opIdx map[PhysRef]int) []Anchor {
	anchors := make([]Anchor, len(changedPerMod))
	for i, changed := range changedPerMod {
		a := &anchors[i]
		seenOp := make(map[int]bool)
		seenCov := make(map[PhysRef]bool)
		addOp := func(idx int) {
			if !seenOp[idx] {
				seenOp[idx] = true
				a.Ops = append(a.Ops, idx)
			}
		}
		addCov := func(ref PhysRef) {
			if !seenCov[ref] {
				seenCov[ref] = true
				a.Covered = append(a.Covered, ref)
			}
		}
		coarse := func(k Key) {
			// The rule was superseded within the batch; anchor to every
			// op its key contributed so the ack follows the key settling.
			for idx, op := range ops {
				if op.Ref.Key == k {
					addOp(idx)
				}
			}
		}
		for _, cr := range changed {
			k, p := keyOf(cr.Match, cr.Priority)
			ks := t.keys[k]
			if cr.Deleted {
				if _, still := ks.leaves[p]; still {
					coarse(k) // re-added later in the batch
					continue
				}
				if old, ok := before[k]; ok {
					if cover, found := oldCovering(old, p); found {
						ref := PhysRef{Key: k, Pfx: cover}
						if idx, gone := opIdx[ref]; gone && !ops[idx].Install {
							addOp(idx)
							continue
						}
					}
				}
				coarse(k)
				continue
			}
			if _, still := ks.leaves[p]; !still {
				coarse(k) // deleted later in the batch
				continue
			}
			cover, ok := t.coveringPhys(ks, p)
			if !ok {
				coarse(k)
				continue
			}
			ref := PhysRef{Key: k, Pfx: cover}
			if idx, inDelta := opIdx[ref]; inDelta && ops[idx].Install {
				addOp(idx)
			} else {
				addCov(ref)
			}
		}
		sort.Ints(a.Ops)
	}
	return anchors
}

func oldCovering(old map[Prefix]physRule, p Prefix) (Prefix, bool) {
	q := p
	for {
		if _, ok := old[q]; ok {
			return q, true
		}
		if q.Bits == 0 {
			return Prefix{}, false
		}
		q = q.parent()
	}
}

// physSnapshotLocked returns the physical table in lookup order (priority
// desc, insertion order asc), rebuilding the cache if dirty.
func (t *Table) physSnapshotLocked() []physListEntry {
	if !t.physDirty && t.physList != nil {
		return t.physList
	}
	var out []physListEntry
	for k, ks := range t.keys {
		for p, r := range ks.phys {
			out = append(out, physListEntry{
				key:     k,
				pfx:     p,
				match:   matchFor(k, p),
				prio:    k.Priority,
				order:   r.order,
				actions: r.actions,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].prio != out[j].prio {
			return out[i].prio > out[j].prio
		}
		return out[i].order < out[j].order
	})
	t.physList = out
	t.physDirty = false
	return out
}

// LogicalRules snapshots the logical table in lookup order.
func (t *Table) LogicalRules() []hsa.Rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.logical.Rules()
}

// PhysicalRules snapshots the compressed physical table in lookup order.
func (t *Table) PhysicalRules() []hsa.Rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := t.physSnapshotLocked()
	rules := make([]hsa.Rule, len(snap))
	for i, e := range snap {
		rules[i] = hsa.Rule{
			Priority: e.prio,
			Match:    e.match,
			Actions:  append([]of.Action(nil), e.actions...),
		}
	}
	return rules
}

// Stats snapshots the aggregator's counters.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Stats{
		LogicalRules:    t.logical.Len(),
		LogicalOps:      t.logicalOps,
		PhysicalOps:     t.physicalOps,
		Batches:         t.batches,
		Witnesses:       t.witnesses,
		Counterexamples: t.counterexamples,
	}
	for _, ks := range t.keys {
		s.PhysicalRules += len(ks.phys)
		if ks.bypass() && len(ks.leaves) > 0 {
			s.Bypassed++
		}
	}
	return s
}
