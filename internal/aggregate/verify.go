package aggregate

import (
	"sort"

	"rum/internal/hsa"
	"rum/internal/of"
	"rum/internal/packet"
)

// maxVerifyIters bounds the bypass-repair loop. Each iteration forces at
// least one more key into bypass mode, and a fully bypassed table is
// literally the logical table, so the loop terminates long before this;
// the bound is a backstop against invariant bugs.
const maxVerifyIters = 64

// verifyBatchLocked checks the batch's physical delta for forwarding
// equivalence against the logical table using hsa witness packets. A
// counterexample is repaired by forcing the blamed key into bypass mode
// (physical = logical for that key, trivially equivalent), rebuilding it,
// and re-diffing against the pre-batch snapshot, so the ops handed to the
// caller always describe a verified table. Failures that bypass cannot
// repair are counted in Stats.Counterexamples — the harness and CI gate
// require that count to stay zero.
func (t *Table) verifyBatchLocked(before map[Key]map[Prefix]physRule, ops []Op, opIdx map[PhysRef]int) ([]Op, map[PhysRef]int) {
	for iter := 0; iter < maxVerifyIters; iter++ {
		badKey, found := t.findCounterexampleLocked(ops)
		if !found {
			return ops, opIdx
		}
		ks := t.keys[badKey]
		if ks == nil || ks.forced {
			t.counterexamples++
			return ops, opIdx
		}
		// The blamed key may be one the batch never touched (a cross-key
		// ordering conflict): snapshot its pre-rebuild state so the
		// re-diff emits the ops that transform it.
		if _, ok := before[badKey]; !ok {
			cp := make(map[Prefix]physRule, len(ks.phys))
			for p, r := range ks.phys {
				cp[p] = r
			}
			before[badKey] = cp
		}
		ks.forced = true
		t.rebuildKey(ks)
		ops, opIdx = t.diffLocked(before)
	}
	t.counterexamples++
	return ops, opIdx
}

// findCounterexampleLocked generates witness packets for every region the
// delta changes and compares the logical and physical winners. For each op
// it samples the op's own region plus its intersection with every
// same-priority logical leaf — own key and foreign keys alike. Per-leaf
// granularity matters: a merged physical rule carries the minimum
// insertion order of its leaves, so a priority tie against a foreign rule
// can flip inside a single leaf's sub-region even when the region corners
// agree. Higher priorities win identically in both tables and exact covers
// add no extra region for lower priorities to lose, so same-priority
// witnesses are sufficient. Iteration is deterministically ordered (key
// creation order, then prefix) so a repair-bypass choice replays
// identically for the same input sequence. Returns the key to blame for
// the first mismatch: the owner of the wrong physical winner, or of the
// unmatched logical winner on a physical miss.
func (t *Table) findCounterexampleLocked(ops []Op) (Key, bool) {
	snap := t.physSnapshotLocked()
	check := func(f packet.Fields) (Key, bool) {
		t.witnesses++
		le := t.logical.Peek(f)
		pe := physPeek(snap, f)
		switch {
		case le == nil && pe == nil:
			return Key{}, false
		case le != nil && pe != nil && of.ActionsEqual(le.Actions, pe.actions):
			return Key{}, false
		case pe != nil:
			return pe.key, true
		default:
			k, _ := keyOf(le.Match, le.Priority)
			return k, true
		}
	}
	type keyOrd struct {
		k  Key
		ks *keyState
	}
	var ordered []keyOrd
	for k, ks := range t.keys {
		ordered = append(ordered, keyOrd{k, ks})
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ks.id < ordered[j].ks.id })
	for _, op := range ops {
		m := matchFor(op.Ref.Key, op.Ref.Pfx)
		if k, bad := check(hsa.Sample(m)); bad {
			return k, true
		}
		for _, ko := range ordered {
			if ko.k.Priority != op.Ref.Key.Priority {
				continue
			}
			leaves := make([]Prefix, 0, len(ko.ks.leaves))
			for p := range ko.ks.leaves {
				leaves = append(leaves, p)
			}
			sort.Slice(leaves, func(i, j int) bool {
				if leaves[i].Addr != leaves[j].Addr {
					return leaves[i].Addr < leaves[j].Addr
				}
				return leaves[i].Bits < leaves[j].Bits
			})
			for _, p2 := range leaves {
				if x, ok := hsa.Intersect(m, matchFor(ko.k, p2)); ok {
					if k, bad := check(hsa.Sample(x)); bad {
						return k, true
					}
				}
			}
		}
	}
	return Key{}, false
}

func physPeek(snap []physListEntry, f packet.Fields) *physListEntry {
	for i := range snap {
		if hsa.Covers(snap[i].match, f) {
			return &snap[i]
		}
	}
	return nil
}

// VerifyFull exhaustively re-proves logical/physical forwarding
// equivalence from scratch: a witness for every logical rule region, every
// physical rule region, and every same-priority pairwise intersection
// between the two tables. It returns the number of counterexamples found
// (zero on a healthy table) and does not mutate aggregation state beyond
// the witness counter.
func (t *Table) VerifyFull() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := t.physSnapshotLocked()
	logical := t.logical.Rules()
	bad := 0
	check := func(f packet.Fields) {
		t.witnesses++
		le := t.logical.Peek(f)
		pe := physPeek(snap, f)
		switch {
		case le == nil && pe == nil:
		case le != nil && pe != nil && of.ActionsEqual(le.Actions, pe.actions):
		default:
			bad++
		}
	}
	for i := range logical {
		check(hsa.Sample(logical[i].Match))
	}
	for i := range snap {
		check(hsa.Sample(snap[i].match))
		for j := range logical {
			if logical[j].Priority != snap[i].prio {
				continue
			}
			if x, ok := hsa.Intersect(snap[i].match, logical[j].Match); ok {
				check(hsa.Sample(x))
			}
		}
	}
	for i := range snap {
		for j := i + 1; j < len(snap); j++ {
			if snap[i].prio != snap[j].prio {
				continue
			}
			if x, ok := hsa.Intersect(snap[i].match, snap[j].match); ok {
				check(hsa.Sample(x))
			}
		}
	}
	return bad
}
