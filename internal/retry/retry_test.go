package retry

import (
	"fmt"
	"testing"
	"time"

	"rum/internal/sim"
)

func TestBackoffGrowthAndCap(t *testing.T) {
	b := New(Policy{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Multiplier: 2, Jitter: 0}, 1)
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("attempt %d: got %v, want %v", i+1, got, w)
		}
	}
	if b.Attempt() != len(want) {
		t.Fatalf("Attempt() = %d, want %d", b.Attempt(), len(want))
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Fatalf("after Reset: got %v, want base 10ms", got)
	}
	if b.Attempt() != 1 {
		t.Fatalf("after Reset, Attempt() = %d, want 1", b.Attempt())
	}
}

func TestBackoffJitterDeterministicPerSeed(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: time.Second, Multiplier: 2, Jitter: 0.5}
	seq := func(seed int64) string {
		b := New(p, seed)
		s := ""
		for i := 0; i < 8; i++ {
			s += fmt.Sprintf("%d;", b.Next())
		}
		return s
	}
	if seq(42) != seq(42) {
		t.Fatal("same seed produced different delay sequences")
	}
	if seq(42) == seq(43) {
		t.Fatal("different seeds produced identical jittered sequences")
	}
	// Jitter must stay inside the documented envelope.
	b := New(p, 7)
	cur := time.Duration(0)
	for i := 0; i < 12; i++ {
		got := b.Next()
		if cur == 0 {
			cur = p.Base
		} else if cur < p.Cap {
			cur *= 2
			if cur > p.Cap {
				cur = p.Cap
			}
		}
		lo := time.Duration(float64(cur) * 0.5)
		hi := time.Duration(float64(cur) * 1.5)
		if got < lo || got > hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i+1, got, lo, hi)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	b := New(Policy{}, 1)
	d := b.Next()
	lo := time.Duration(float64(DefaultPolicy.Base) * 0.5)
	hi := time.Duration(float64(DefaultPolicy.Base) * 1.5)
	if d < lo || d > hi {
		t.Fatalf("zero policy first delay %v outside default envelope [%v, %v]", d, lo, hi)
	}
}

func TestLoopRetriesUntilSuccess(t *testing.T) {
	s := sim.New()
	b := New(Policy{Base: 5 * time.Millisecond, Cap: 40 * time.Millisecond, Multiplier: 2, Jitter: 0}, 1)
	attempts := 0
	var doneOK bool
	var doneAt time.Duration
	Loop(s, b, 0, func() bool {
		attempts++
		return attempts == 3
	}, func(ok bool) {
		doneOK = ok
		doneAt = s.Now()
	})
	s.Run()
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if !doneOK {
		t.Fatal("done reported failure")
	}
	// Delays: 5ms, 10ms, 20ms → success at 35ms.
	if doneAt != 35*time.Millisecond {
		t.Fatalf("success at %v, want 35ms", doneAt)
	}
	if b.Attempt() != 0 {
		t.Fatalf("backoff not reset on success: Attempt() = %d", b.Attempt())
	}
}

func TestLoopGivesUpAfterMaxAttempts(t *testing.T) {
	s := sim.New()
	b := New(Policy{Base: time.Millisecond, Cap: time.Millisecond, Multiplier: 2, Jitter: 0}, 1)
	attempts := 0
	gaveUp := false
	Loop(s, b, 4, func() bool {
		attempts++
		return false
	}, func(ok bool) { gaveUp = !ok })
	s.Run()
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4", attempts)
	}
	if !gaveUp {
		t.Fatal("done(false) not reported after exhausting attempts")
	}
}
