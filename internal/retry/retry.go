// Package retry provides the shared jittered-exponential-backoff policy
// used everywhere RUM re-dials a lost switch channel: the controller
// library's reconnect path, the experiments' resync harnesses, and the
// cluster's crash→re-dial handoff.
//
// Backoff state is deterministic: jitter comes from a seeded generator so
// a replayed fault schedule produces byte-identical reconnect timing (and
// therefore byte-identical experiment traces). Delays grow geometrically
// from Base up to Cap and reset to Base on success, so a switch that
// flaps repeatedly is probed gently while a switch that recovers is
// re-adopted at full speed the next time it fails.
package retry

import (
	"math/rand"
	"time"

	"rum/internal/sim"
)

// Policy describes a jittered exponential backoff schedule.
type Policy struct {
	// Base is the first retry delay. Zero selects DefaultPolicy.Base.
	Base time.Duration
	// Cap bounds the grown delay (before jitter). Zero selects
	// DefaultPolicy.Cap.
	Cap time.Duration
	// Multiplier is the per-attempt growth factor; values below 1 are
	// treated as DefaultPolicy.Multiplier.
	Multiplier float64
	// Jitter is the fraction of the grown delay randomized around it:
	// with Jitter 0.5 the delay is uniform in [0.5d, 1.5d). Zero means
	// no jitter; negative values are clamped to zero.
	Jitter float64
}

// DefaultPolicy mirrors the reconnect behavior documented in
// docs/OVERLOAD.md: 10ms base, 2x growth, 1s cap, ±50% jitter.
var DefaultPolicy = Policy{
	Base:       10 * time.Millisecond,
	Cap:        time.Second,
	Multiplier: 2,
	Jitter:     0.5,
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = DefaultPolicy.Base
	}
	if p.Cap <= 0 {
		p.Cap = DefaultPolicy.Cap
	}
	if p.Multiplier < 1 {
		p.Multiplier = DefaultPolicy.Multiplier
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// Backoff tracks retry state for one reconnect loop. It is not safe for
// concurrent use; every dial loop owns its own Backoff.
type Backoff struct {
	policy   Policy
	rng      *rand.Rand
	attempts int
	cur      time.Duration
}

// New returns a Backoff following p, with jitter drawn from a generator
// seeded with seed. The same (policy, seed) pair always yields the same
// delay sequence.
func New(p Policy, seed int64) *Backoff {
	return &Backoff{policy: p.withDefaults(), rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay to wait before the next attempt and advances the
// backoff state. The first call returns roughly Base; subsequent calls
// grow by Multiplier up to Cap, each widened by ±Jitter.
func (b *Backoff) Next() time.Duration {
	if b.cur == 0 {
		b.cur = b.policy.Base
	} else {
		grown := time.Duration(float64(b.cur) * b.policy.Multiplier)
		if grown > b.policy.Cap || grown <= 0 {
			grown = b.policy.Cap
		}
		b.cur = grown
	}
	b.attempts++
	d := b.cur
	if j := b.policy.Jitter; j > 0 {
		// Uniform in [d(1-j), d(1+j)).
		span := float64(d) * 2 * j
		d = time.Duration(float64(d)*(1-j) + b.rng.Float64()*span)
		if d <= 0 {
			d = 1
		}
	}
	return d
}

// Attempt returns how many delays Next has handed out since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempts }

// Reset returns the backoff to its initial delay; call it after a
// successful attempt so the next failure starts the schedule over.
func (b *Backoff) Reset() {
	b.attempts = 0
	b.cur = 0
}

// Loop retries fn under clock until it succeeds or gives up. fn reports
// whether the attempt succeeded; when it fails, Loop schedules the next
// attempt after the backoff's next delay. maxAttempts <= 0 means retry
// forever. done (optional) is invoked once with the final outcome.
//
// Loop itself returns immediately after scheduling the first attempt
// (after one backoff delay), which is what the reconnect paths want: a
// lost channel is never re-dialed synchronously.
func Loop(clock sim.Clock, b *Backoff, maxAttempts int, fn func() bool, done func(ok bool)) {
	var step func()
	step = func() {
		if fn() {
			b.Reset()
			if done != nil {
				done(true)
			}
			return
		}
		if maxAttempts > 0 && b.Attempt() >= maxAttempts {
			if done != nil {
				done(false)
			}
			return
		}
		clock.After(b.Next(), step)
	}
	clock.After(b.Next(), step)
}
