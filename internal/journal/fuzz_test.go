package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalDecode feeds arbitrary bytes through the full replication
// ingest path: frame validation, record decoding, replica application.
// The contract under fuzz: never panic, and never silently misparse —
// any frame the decoder accepts must re-encode to the byte-identical
// frame (so a corruption that slips past the CRC cannot mutate a record
// on the way through).
func FuzzJournalDecode(f *testing.F) {
	// Seed with well-formed frames so the fuzzer starts near the format.
	intent := SealFrame(AppendIntent(BeginFrame(nil), testIntent("s1", 7, 41)))
	f.Add(append([]byte(nil), intent...))
	mixed := AppendIntent(BeginFrame(nil), testIntent("edge-0-3", 1, 1))
	mixed = AppendResolve(mixed, "edge-0-3", 1, 1)
	mixed = AppendResolve(mixed, "core-1", 9, 99)
	f.Add(append([]byte(nil), SealFrame(mixed)...))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Payload(data)
		if err != nil {
			// Rejected frames must leave a replica untouched.
			r := NewReplica()
			_ = r.ApplyFrame(data)
			if applied, rejected := r.Stats(); applied != 0 || rejected != 1 {
				t.Fatalf("rejected frame altered replica: applied=%d rejected=%d", applied, rejected)
			}
			return
		}
		// Accepted frame: decode all records, then re-encode and compare.
		reenc := BeginFrame(nil)
		rest := payload
		for len(rest) > 0 {
			var rec Record
			var err error
			rec, rest, err = NextRecord(rest)
			if err != nil {
				reenc = nil
				break
			}
			switch rec.Op {
			case OpIntent:
				if len(rec.Switch) > 255 || len(rec.Strategy) > 255 || len(rec.Body) > 0xffff {
					t.Fatalf("decoded record exceeds encodable bounds: %+v", rec)
				}
				reenc = AppendIntent(reenc, &rec)
			case OpResolve:
				reenc = AppendResolve(reenc, rec.Switch, rec.XID, rec.Seq)
			default:
				t.Fatalf("NextRecord returned unknown op %d without error", rec.Op)
			}
		}
		if reenc != nil {
			if got := SealFrame(reenc); !bytes.Equal(got[HeaderLen:], payload) {
				t.Fatalf("decode/re-encode not a fixed point:\n in: %x\nout: %x", payload, got[HeaderLen:])
			}
		}
		// Whatever the bytes were, replica application must not panic.
		r := NewReplica()
		_ = r.ApplyFrame(data)
	})
}
