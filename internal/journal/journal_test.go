package journal

import (
	"encoding/binary"
	"testing"
	"time"

	"rum/internal/of"
)

func testIntent(sw string, xid uint32, seq uint64) *Record {
	return &Record{
		Op:       OpIntent,
		Switch:   sw,
		XID:      xid,
		Seq:      seq,
		Digest:   0xdeadbeefcafef00d,
		Strategy: "adaptive",
		IssuedAt: 1500 * time.Microsecond,
		Deadline: 30 * time.Second,
		Body:     []byte{0x01, 0x0e, 0x00, 0x08, 0x00, 0x00, 0x00, 0x07},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	buf := BeginFrame(nil)
	if !Empty(buf) {
		t.Fatal("fresh frame not empty")
	}
	want := []*Record{testIntent("s1", 7, 41), testIntent("s2", 8, 42)}
	for _, r := range want {
		buf = AppendIntent(buf, r)
	}
	buf = AppendResolve(buf, "s1", 7, 41)
	frame := SealFrame(buf)
	if frame == nil {
		t.Fatal("sealed non-empty frame returned nil")
	}

	payload, err := Payload(frame)
	if err != nil {
		t.Fatalf("Payload: %v", err)
	}
	var recs []Record
	for len(payload) > 0 {
		var rec Record
		rec, payload, err = NextRecord(payload)
		if err != nil {
			t.Fatalf("NextRecord: %v", err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 3 {
		t.Fatalf("decoded %d records, want 3", len(recs))
	}
	for i, w := range want {
		g := recs[i]
		if g.Op != OpIntent || g.Switch != w.Switch || g.XID != w.XID || g.Seq != w.Seq ||
			g.Digest != w.Digest || g.Strategy != w.Strategy ||
			g.IssuedAt != w.IssuedAt || g.Deadline != w.Deadline || string(g.Body) != string(w.Body) {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, g, *w)
		}
	}
	if r := recs[2]; r.Op != OpResolve || r.Switch != "s1" || r.XID != 7 || r.Seq != 41 {
		t.Fatalf("resolve record mismatch: %+v", recs[2])
	}
}

func TestSealEmptyFrameNil(t *testing.T) {
	if got := SealFrame(BeginFrame(nil)); got != nil {
		t.Fatalf("sealing empty frame: got %v, want nil", got)
	}
}

func TestPayloadRejectsCorruption(t *testing.T) {
	frame := SealFrame(AppendIntent(BeginFrame(nil), testIntent("s1", 1, 1)))
	cases := map[string]func([]byte) []byte{
		"truncated header": func(f []byte) []byte { return f[:HeaderLen-1] },
		"torn payload":     func(f []byte) []byte { return f[:len(f)-3] },
		"trailing bytes":   func(f []byte) []byte { return append(f, 0xff) },
		"flipped bit": func(f []byte) []byte {
			f[HeaderLen+2] ^= 0x40
			return f
		},
		"zero length": func(f []byte) []byte {
			binary.BigEndian.PutUint32(f[0:4], 0)
			return f[:HeaderLen]
		},
		"absurd length": func(f []byte) []byte {
			binary.BigEndian.PutUint32(f[0:4], 1<<30)
			return f
		},
	}
	for name, mutate := range cases {
		cp := append([]byte(nil), frame...)
		if _, err := Payload(mutate(cp)); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

func TestReplicaIntentThenResolve(t *testing.T) {
	r := NewReplica()
	frame := SealFrame(AppendIntent(BeginFrame(nil), testIntent("s1", 7, 41)))
	if err := r.ApplyFrame(frame); err != nil {
		t.Fatalf("ApplyFrame(intent): %v", err)
	}
	if n := r.PendingCount("s1"); n != 1 {
		t.Fatalf("pending after intent: %d, want 1", n)
	}
	frame = SealFrame(AppendResolve(BeginFrame(frame), "s1", 7, 41))
	if err := r.ApplyFrame(frame); err != nil {
		t.Fatalf("ApplyFrame(resolve): %v", err)
	}
	if n := r.PendingCount("s1"); n != 0 {
		t.Fatalf("pending after resolve: %d, want 0", n)
	}
	if got := r.TakePending("s1"); got != nil {
		t.Fatalf("TakePending after resolve: %v, want nil", got)
	}
}

// Resolve-before-intent is the ordering no-wait strategies produce: the
// confirm happens inside OnFlowMod, before the flush that carries the
// intent. The tombstone must eat the late intent.
func TestReplicaTombstoneEatsLateIntent(t *testing.T) {
	r := NewReplica()
	f1 := SealFrame(AppendResolve(BeginFrame(nil), "s1", 7, 41))
	if err := r.ApplyFrame(f1); err != nil {
		t.Fatalf("ApplyFrame(early resolve): %v", err)
	}
	f2 := SealFrame(AppendIntent(BeginFrame(nil), testIntent("s1", 7, 41)))
	if err := r.ApplyFrame(f2); err != nil {
		t.Fatalf("ApplyFrame(late intent): %v", err)
	}
	if n := r.PendingCount("s1"); n != 0 {
		t.Fatalf("tombstoned intent survived: pending=%d", n)
	}
	// The tombstone is one-shot: a different seq still lands.
	f3 := SealFrame(AppendIntent(BeginFrame(nil), testIntent("s1", 8, 42)))
	if err := r.ApplyFrame(f3); err != nil {
		t.Fatalf("ApplyFrame(fresh intent): %v", err)
	}
	if n := r.PendingCount("s1"); n != 1 {
		t.Fatalf("fresh intent after tombstone: pending=%d, want 1", n)
	}
}

func TestReplicaTakePendingSeqOrder(t *testing.T) {
	r := NewReplica()
	buf := BeginFrame(nil)
	for _, seq := range []uint64{44, 41, 43, 42} {
		buf = AppendIntent(buf, testIntent("s1", uint32(seq), seq))
	}
	if err := r.ApplyFrame(SealFrame(buf)); err != nil {
		t.Fatalf("ApplyFrame: %v", err)
	}
	got := r.TakePending("s1")
	if len(got) != 4 {
		t.Fatalf("took %d intents, want 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Seq >= got[i].Seq {
			t.Fatalf("intents out of seq order: %v", got)
		}
	}
	if r.PendingCount("s1") != 0 {
		t.Fatal("TakePending left state behind")
	}
}

func TestReplicaRejectsFrameWhole(t *testing.T) {
	r := NewReplica()
	buf := AppendIntent(BeginFrame(nil), testIntent("s1", 1, 1))
	buf = AppendIntent(buf, testIntent("s1", 2, 2))
	frame := SealFrame(buf)
	frame[len(frame)-1] ^= 0xff // corrupt the tail record past sealing
	if err := r.ApplyFrame(frame); err == nil {
		t.Fatal("corrupt frame accepted")
	}
	if n := r.PendingCount("s1"); n != 0 {
		t.Fatalf("partial frame applied: pending=%d, want 0", n)
	}
	if applied, rejected := r.Stats(); applied != 0 || rejected != 1 {
		t.Fatalf("stats after reject: applied=%d rejected=%d", applied, rejected)
	}
}

func TestDigestRuleStable(t *testing.T) {
	m := of.Match{Wildcards: of.WcAll &^ of.WcDLDst}
	copy(m.DLDst[:], []byte{0, 1, 2, 3, 4, 5})
	acts := []of.Action{of.ActionOutput{Port: 3, MaxLen: 65535}}

	d1, scratch := DigestRule(nil, 10, m, acts)
	d2, scratch := DigestRule(scratch, 10, m, acts)
	if d1 != d2 {
		t.Fatalf("digest unstable: %x vs %x", d1, d2)
	}
	d3, scratch := DigestRule(scratch, 11, m, acts)
	if d3 == d1 {
		t.Fatal("priority change did not change digest")
	}
	acts[0] = of.ActionOutput{Port: 4, MaxLen: 65535}
	d4, _ := DigestRule(scratch, 10, m, acts)
	if d4 == d1 {
		t.Fatal("action change did not change digest")
	}
}

// A wildcarded field's bytes must not leak into the digest: two matches
// equal under Normalize must digest identically.
func TestDigestRuleNormalizes(t *testing.T) {
	var a, b of.Match
	a.Wildcards, b.Wildcards = of.WcAll, of.WcAll
	copy(a.DLSrc[:], []byte{9, 9, 9, 9, 9, 9}) // garbage under full wildcard
	da, scratch := DigestRule(nil, 5, a, nil)
	db, _ := DigestRule(scratch, 5, b, nil)
	if da != db {
		t.Fatalf("normalized-equal matches digest differently: %x vs %x", da, db)
	}
}
