package journal

import (
	"sort"
	"sync"
	"time"
)

// Intent is one pending update held by a Replica on behalf of another
// member. Unlike Record, an Intent owns its bytes — ApplyFrame copies
// out of the frame so the sender can recycle its buffer immediately.
type Intent struct {
	Switch   string
	XID      uint32
	Seq      uint64
	Digest   uint64
	Strategy string
	IssuedAt time.Duration
	Deadline time.Duration
	Body     []byte
}

// Replica is the successor-side store of a member's pending-update
// journal: per switch, the set of intents not yet resolved by their
// owner. It tolerates the one reordering the core actually produces —
// a resolve arriving before its intent (no-wait strategies confirm an
// update before the flush that journals it) — by keeping tombstones for
// resolves of unseen seqs and dropping the matching intent on arrival.
type Replica struct {
	mu       sync.Mutex
	pending  map[string]map[uint64]Intent
	tombs    map[string]map[uint64]struct{}
	frames   uint64
	rejected uint64
}

// NewReplica returns an empty replica store.
func NewReplica() *Replica {
	return &Replica{
		pending: make(map[string]map[uint64]Intent),
		tombs:   make(map[string]map[uint64]struct{}),
	}
}

// ApplyFrame validates one replication frame and folds its records into
// the store. A frame that fails validation — torn, truncated, bad CRC,
// corrupt record — is rejected whole, with no partial application, and
// counted; the store is left exactly as it was.
func (r *Replica) ApplyFrame(frame []byte) error {
	payload, err := Payload(frame)
	if err != nil {
		r.mu.Lock()
		r.rejected++
		r.mu.Unlock()
		return err
	}
	// Decode everything before mutating, so a record torn mid-payload
	// cannot leave half a frame applied.
	var recs []Record
	for len(payload) > 0 {
		var rec Record
		rec, payload, err = NextRecord(payload)
		if err != nil {
			r.mu.Lock()
			r.rejected++
			r.mu.Unlock()
			return err
		}
		recs = append(recs, rec)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.frames++
	for i := range recs {
		rec := &recs[i]
		switch rec.Op {
		case OpIntent:
			if ts := r.tombs[rec.Switch]; ts != nil {
				if _, dead := ts[rec.Seq]; dead {
					delete(ts, rec.Seq)
					if len(ts) == 0 {
						delete(r.tombs, rec.Switch)
					}
					continue
				}
			}
			sw := r.pending[rec.Switch]
			if sw == nil {
				sw = make(map[uint64]Intent)
				r.pending[rec.Switch] = sw
			}
			sw[rec.Seq] = Intent{
				Switch:   rec.Switch,
				XID:      rec.XID,
				Seq:      rec.Seq,
				Digest:   rec.Digest,
				Strategy: rec.Strategy,
				IssuedAt: rec.IssuedAt,
				Deadline: rec.Deadline,
				Body:     append([]byte(nil), rec.Body...),
			}
		case OpResolve:
			if sw := r.pending[rec.Switch]; sw != nil {
				if _, ok := sw[rec.Seq]; ok {
					delete(sw, rec.Seq)
					if len(sw) == 0 {
						delete(r.pending, rec.Switch)
					}
					continue
				}
			}
			ts := r.tombs[rec.Switch]
			if ts == nil {
				ts = make(map[uint64]struct{})
				r.tombs[rec.Switch] = ts
			}
			ts[rec.Seq] = struct{}{}
		}
	}
	return nil
}

// TakePending removes and returns the stored intents for one switch,
// ordered by seq (issue order). Tombstones for the switch are dropped
// too — after a take, the switch's slate is clean.
func (r *Replica) TakePending(sw string) []Intent {
	r.mu.Lock()
	m := r.pending[sw]
	delete(r.pending, sw)
	delete(r.tombs, sw)
	r.mu.Unlock()
	if len(m) == 0 {
		return nil
	}
	out := make([]Intent, 0, len(m))
	for _, it := range m {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// DropSwitch discards all state for one switch (clean detach: the owner
// resolved or failed everything itself, nothing to rescue).
func (r *Replica) DropSwitch(sw string) {
	r.mu.Lock()
	delete(r.pending, sw)
	delete(r.tombs, sw)
	r.mu.Unlock()
}

// Reset discards everything — used when the replicated-from member is
// declared dead and its journal has been consumed, or when it restarts
// and will re-journal from scratch.
func (r *Replica) Reset() {
	r.mu.Lock()
	r.pending = make(map[string]map[uint64]Intent)
	r.tombs = make(map[string]map[uint64]struct{})
	r.mu.Unlock()
}

// PendingCount reports the number of stored intents for one switch.
func (r *Replica) PendingCount(sw string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending[sw])
}

// Stats reports lifetime frame counters: frames applied and frames
// rejected by validation.
func (r *Replica) Stats() (applied, rejected uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frames, r.rejected
}
