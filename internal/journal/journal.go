// Package journal is the pending-intent replication format of the
// cluster's crash-rescue protocol: each RUM member streams a compact
// journal of the updates it has flushed toward its switches — switch,
// xid, seq, a match/action digest, the serving strategy, issue time and
// deadline, plus the FlowMod's wire bytes for re-issue — to a successor
// member's Replica. On a member crash the successor reconstructs every
// orphaned switch's pending set from its replica and resolves the
// orphan's ack futures truthfully instead of abandoning them (see
// docs/CLUSTER.md, "Intent replication and rescue").
//
// Records travel in frames: a fixed 8-byte header (payload length +
// CRC-32) followed by length-delimited records. The framing exists so a
// torn, truncated, or corrupted replication stream is *detected* — a
// replica fed garbage must refuse it with an error, never panic and
// never silently misparse a record into a plausible-looking wrong one
// (FuzzJournalDecode holds the decoder to that).
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"

	"rum/internal/of"
)

// Record operations.
const (
	// OpIntent records one pending update flushed toward a switch.
	OpIntent byte = 1
	// OpResolve retires a previously journaled intent (the update
	// resolved on its owner, so there is nothing left to rescue).
	OpResolve byte = 2
)

// HeaderLen is the frame header size: 4-byte payload length followed by
// the payload's CRC-32 (IEEE).
const HeaderLen = 8

// maxFramePayload bounds a frame; a length field beyond it is rejected
// before any allocation is attempted on its behalf.
const maxFramePayload = 1 << 24

// Record is one decoded journal record. Intent records carry the full
// tuple; resolve records carry only (Switch, XID, Seq). Switch,
// Strategy, and Body reference the decoded frame's backing — callers
// retaining a record past the frame's lifetime must copy them.
type Record struct {
	Op       byte
	Switch   string
	XID      uint32
	Seq      uint64
	Digest   uint64
	Strategy string
	IssuedAt time.Duration
	Deadline time.Duration
	Body     []byte // FlowMod wire bytes (intents only)
}

// BeginFrame resets buf to an empty frame: the 8-byte header reserved,
// no records. The returned slice reuses buf's backing when it fits.
func BeginFrame(buf []byte) []byte {
	if cap(buf) < HeaderLen {
		return make([]byte, HeaderLen, 256)
	}
	buf = buf[:HeaderLen]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Empty reports whether a frame under construction holds no records.
func Empty(buf []byte) bool { return len(buf) <= HeaderLen }

// AppendIntent appends one intent record to a frame under construction.
func AppendIntent(buf []byte, rec *Record) []byte {
	buf = append(buf, OpIntent, byte(len(rec.Switch)))
	buf = append(buf, rec.Switch...)
	buf = binary.BigEndian.AppendUint32(buf, rec.XID)
	buf = binary.BigEndian.AppendUint64(buf, rec.Seq)
	buf = binary.BigEndian.AppendUint64(buf, rec.Digest)
	buf = append(buf, byte(len(rec.Strategy)))
	buf = append(buf, rec.Strategy...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(rec.IssuedAt))
	buf = binary.BigEndian.AppendUint64(buf, uint64(rec.Deadline))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(rec.Body)))
	return append(buf, rec.Body...)
}

// AppendResolve appends one resolve record to a frame under construction.
func AppendResolve(buf []byte, sw string, xid uint32, seq uint64) []byte {
	buf = append(buf, OpResolve, byte(len(sw)))
	buf = append(buf, sw...)
	buf = binary.BigEndian.AppendUint32(buf, xid)
	return binary.BigEndian.AppendUint64(buf, seq)
}

// SealFrame fills the header (payload length + CRC) and returns the
// complete frame, ready for delivery. Sealing an empty frame returns nil.
func SealFrame(buf []byte) []byte {
	if len(buf) <= HeaderLen {
		return nil
	}
	payload := buf[HeaderLen:]
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	return buf
}

// Payload validates a frame's header — length and CRC — and returns the
// record payload. A torn or corrupted frame is an error; trailing bytes
// beyond the declared length are an error too (a frame is a unit, not a
// stream position guess).
func Payload(frame []byte) ([]byte, error) {
	if len(frame) < HeaderLen {
		return nil, fmt.Errorf("journal: frame truncated: %d bytes, need %d-byte header", len(frame), HeaderLen)
	}
	n := binary.BigEndian.Uint32(frame[0:4])
	if n == 0 || n > maxFramePayload {
		return nil, fmt.Errorf("journal: frame declares implausible payload length %d", n)
	}
	if uint32(len(frame)-HeaderLen) != n {
		return nil, fmt.Errorf("journal: frame torn: header declares %d payload bytes, have %d", n, len(frame)-HeaderLen)
	}
	payload := frame[HeaderLen:]
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(frame[4:8]); got != want {
		return nil, fmt.Errorf("journal: frame CRC mismatch: computed %08x, header %08x", got, want)
	}
	return payload, nil
}

// NextRecord decodes the first record of a validated payload, returning
// it and the remaining payload. Every length field is bounds-checked
// before use, so a corrupt payload that passed the CRC of a different
// corruption (or a hand-built attack frame) errors instead of
// panicking or misparsing.
func NextRecord(p []byte) (Record, []byte, error) {
	var r Record
	if len(p) < 2 {
		return r, nil, fmt.Errorf("journal: record truncated: %d bytes", len(p))
	}
	r.Op = p[0]
	swLen := int(p[1])
	p = p[2:]
	if len(p) < swLen {
		return r, nil, fmt.Errorf("journal: record switch name torn: need %d bytes, have %d", swLen, len(p))
	}
	r.Switch = string(p[:swLen])
	p = p[swLen:]
	switch r.Op {
	case OpResolve:
		if len(p) < 12 {
			return r, nil, fmt.Errorf("journal: resolve record torn: %d bytes after name", len(p))
		}
		r.XID = binary.BigEndian.Uint32(p[0:4])
		r.Seq = binary.BigEndian.Uint64(p[4:12])
		return r, p[12:], nil
	case OpIntent:
		if len(p) < 21 {
			return r, nil, fmt.Errorf("journal: intent record torn: %d bytes after name", len(p))
		}
		r.XID = binary.BigEndian.Uint32(p[0:4])
		r.Seq = binary.BigEndian.Uint64(p[4:12])
		r.Digest = binary.BigEndian.Uint64(p[12:20])
		stratLen := int(p[20])
		p = p[21:]
		if len(p) < stratLen+18 {
			return r, nil, fmt.Errorf("journal: intent record strategy/body torn: need %d bytes, have %d", stratLen+18, len(p))
		}
		r.Strategy = string(p[:stratLen])
		p = p[stratLen:]
		r.IssuedAt = time.Duration(binary.BigEndian.Uint64(p[0:8]))
		r.Deadline = time.Duration(binary.BigEndian.Uint64(p[8:16]))
		bodyLen := int(binary.BigEndian.Uint16(p[16:18]))
		p = p[18:]
		if len(p) < bodyLen {
			return r, nil, fmt.Errorf("journal: intent record body torn: need %d bytes, have %d", bodyLen, len(p))
		}
		r.Body = p[:bodyLen]
		return r, p[bodyLen:], nil
	default:
		return r, nil, fmt.Errorf("journal: unknown record op %d", r.Op)
	}
}

// DigestRule computes the FNV-1a digest of a rule's data-plane identity
// — priority, normalized match, actions — appending the canonical
// encoding into scratch (returned for reuse, so steady-state digesting
// allocates nothing). The same function digests a journaled FlowMod and
// a FIB rule, which is what lets the rescue path diff a replica against
// a re-read flow table without decoding every body.
func DigestRule(scratch []byte, priority uint16, m of.Match, actions []of.Action) (uint64, []byte) {
	scratch = scratch[:0]
	scratch = append(scratch, byte(priority>>8), byte(priority))
	nm := m.Normalize()
	scratch = nm.Append(scratch)
	scratch = of.AppendActions(scratch, actions)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range scratch {
		h ^= uint64(b)
		h *= prime64
	}
	return h, scratch
}
