package hsa

import (
	"errors"
	"net/netip"
	"strings"
	"testing"

	"rum/internal/of"
	"rum/internal/packet"
)

// The triangle fabric of the migration experiment: s1 reaches s2 (port 2)
// and s3 (port 3); s2 reaches s3 (port 2); s3 delivers to the host on
// port 1 (no peer = egress).
func trianglePorts() map[string]map[uint16]PortPeer {
	return map[string]map[uint16]PortPeer{
		"s1": {2: {Switch: "s2", Port: 1}, 3: {Switch: "s3", Port: 3}},
		"s2": {1: {Switch: "s1", Port: 2}, 2: {Switch: "s3", Port: 2}},
		"s3": {2: {Switch: "s2", Port: 2}, 3: {Switch: "s1", Port: 3}},
	}
}

func exactFlowMatch() of.Match {
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = packet.EtherTypeIPv4
	m.SetNWSrc(netip.AddrFrom4([4]byte{10, 0, 0, 1}))
	m.SetNWDst(netip.AddrFrom4([4]byte{10, 1, 0, 1}))
	return m
}

func fwd(prio uint16, m of.Match, port uint16) Rule {
	return Rule{Priority: prio, Match: m, Actions: []of.Action{of.ActionOutput{Port: port}}}
}

func dropAll() Rule {
	return Rule{Priority: 1, Match: of.MatchAll()}
}

func TestVerifyTransientRejectsBadSchedules(t *testing.T) {
	fm := exactFlowMatch()
	reg := Region{Ingress: "s1", Match: fm}

	cases := []struct {
		name     string
		old, new *NetState
		wantKind string // "" = must accept
		wantPath []string
	}{
		{
			// The classic broken migration: ingress flips to the new path
			// before the downstream rule exists. A packet committed at s1
			// dies in s2's catch-all.
			name: "transient blackhole: flip before add",
			old: &NetState{Ports: trianglePorts(), Tables: map[string][]Rule{
				"s1": {fwd(100, fm, 3), dropAll()},
				"s2": {dropAll()},
				"s3": {fwd(100, fm, 1), dropAll()},
			}},
			new: &NetState{Ports: trianglePorts(), Tables: map[string][]Rule{
				"s1": {fwd(100, fm, 2), dropAll()},
				"s2": {dropAll()},
				"s3": {fwd(100, fm, 1), dropAll()},
			}},
			wantKind: "blackhole",
			wantPath: []string{"s1", "s2"},
		},
		{
			// A path reversal updated in one shot: s1 starts pointing at
			// s2 while s2 is being flipped back toward s1.
			name: "transient loop: simultaneous reversal",
			old: &NetState{Ports: trianglePorts(), Tables: map[string][]Rule{
				"s1": {fwd(100, fm, 3), dropAll()},
				"s2": {fwd(100, fm, 2), dropAll()},
				"s3": {fwd(100, fm, 1), dropAll()},
			}},
			new: &NetState{Ports: trianglePorts(), Tables: map[string][]Rule{
				"s1": {fwd(100, fm, 2), dropAll()},
				"s2": {fwd(100, fm, 1), dropAll()},
				"s3": {fwd(100, fm, 1), dropAll()},
			}},
			wantKind: "loop",
			wantPath: []string{"s1", "s2", "s1"},
		},
		{
			// Add-before-remove stage 1: installing the inert downstream
			// rule at s2 changes nothing for in-flight traffic.
			name: "safe: add inert downstream rule",
			old: &NetState{Ports: trianglePorts(), Tables: map[string][]Rule{
				"s1": {fwd(100, fm, 3), dropAll()},
				"s2": {dropAll()},
				"s3": {fwd(100, fm, 1), dropAll()},
			}},
			new: &NetState{Ports: trianglePorts(), Tables: map[string][]Rule{
				"s1": {fwd(100, fm, 3), dropAll()},
				"s2": {fwd(100, fm, 2), dropAll()},
				"s3": {fwd(100, fm, 1), dropAll()},
			}},
		},
		{
			// Stage 2 once the downstream rule is confirmed: either table
			// at s1 delivers.
			name: "safe: flip after downstream confirmed",
			old: &NetState{Ports: trianglePorts(), Tables: map[string][]Rule{
				"s1": {fwd(100, fm, 3), dropAll()},
				"s2": {fwd(100, fm, 2), dropAll()},
				"s3": {fwd(100, fm, 1), dropAll()},
			}},
			new: &NetState{Ports: trianglePorts(), Tables: map[string][]Rule{
				"s1": {fwd(100, fm, 2), dropAll()},
				"s2": {fwd(100, fm, 2), dropAll()},
				"s3": {fwd(100, fm, 1), dropAll()},
			}},
		},
		{
			// Fresh install: old state drops at the ingress itself (the
			// region is not admitted yet), which is not a blackhole.
			name: "safe: install admits new traffic",
			old: &NetState{Ports: trianglePorts(), Tables: map[string][]Rule{
				"s1": {dropAll()},
				"s2": {fwd(100, fm, 2), dropAll()},
				"s3": {fwd(100, fm, 1), dropAll()},
			}},
			new: &NetState{Ports: trianglePorts(), Tables: map[string][]Rule{
				"s1": {fwd(100, fm, 2), dropAll()},
				"s2": {fwd(100, fm, 2), dropAll()},
				"s3": {fwd(100, fm, 1), dropAll()},
			}},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := VerifyTransient(tc.old, tc.new, reg)
			if tc.wantKind == "" {
				if err != nil {
					t.Fatalf("expected schedule accepted, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected transient %s to be rejected", tc.wantKind)
			}
			var ce *CounterexampleError
			if !errors.As(err, &ce) {
				t.Fatalf("expected CounterexampleError, got %T: %v", err, err)
			}
			if ce.Kind != tc.wantKind {
				t.Fatalf("kind = %q, want %q (%v)", ce.Kind, tc.wantKind, err)
			}
			if len(ce.Path) != len(tc.wantPath) {
				t.Fatalf("counterexample not minimal: path %v, want switches %v", ce.Path, tc.wantPath)
			}
			for i, sw := range tc.wantPath {
				if ce.Path[i].Switch != sw {
					t.Fatalf("path[%d] = %q, want %q (%v)", i, ce.Path[i].Switch, sw, err)
				}
			}
			if !Covers(reg.Match, ce.Packet) {
				t.Fatalf("witness packet %v not inside the region", ce.Packet)
			}
			if !strings.Contains(err.Error(), tc.wantKind) {
				t.Fatalf("error should name the failure kind: %v", err)
			}
		})
	}
}

// TestVerifyTransientWitnessClasses checks that witness sampling covers
// distinct behaviour classes: an http-specific detour rule must
// contribute its own witness, so a schedule that blackholes only http
// traffic is still rejected.
func TestVerifyTransientWitnessClasses(t *testing.T) {
	host := of.MatchAll()
	host.Wildcards &^= of.WcDLType
	host.DLType = packet.EtherTypeIPv4
	host.SetNWSrc(netip.AddrFrom4([4]byte{10, 0, 0, 1}))

	http := host
	http.Wildcards &^= of.WcNWProto | of.WcTPDst
	http.NWProto = packet.ProtoTCP
	http.TPDst = 80

	// a —(2/1)— b —(2/2)— s3 —(1)→ host; b —(3/1)— c —(2)→ fw.
	ports := map[string]map[uint16]PortPeer{
		"a":  {2: {Switch: "b", Port: 1}},
		"b":  {1: {Switch: "a", Port: 2}, 2: {Switch: "s3", Port: 2}, 3: {Switch: "c", Port: 1}},
		"c":  {1: {Switch: "b", Port: 3}},
		"s3": {2: {Switch: "b", Port: 2}},
	}
	// Old: the host's traffic flows a→b→s3 with the http detour b→c→fw
	// in place. New (bad): the http detour rule Z is strict-deleted at b
	// while traffic still flows — http packets committed at a now die at
	// nothing... they fall to Y and bypass; worse, delete Y instead so
	// http keeps its detour but generic traffic blackholes at b.
	old := &NetState{Ports: ports, Tables: map[string][]Rule{
		"a":  {fwd(200, host, 2), dropAll()},
		"b":  {fwd(200, http, 3), fwd(50, host, 2), dropAll()},
		"c":  {fwd(100, host, 2), dropAll()},
		"s3": {fwd(100, host, 1), dropAll()},
	}}
	// Y removed at b: generic traffic hits the catch-all mid-path.
	newState := &NetState{Ports: ports, Tables: map[string][]Rule{
		"a":  {fwd(200, host, 2), dropAll()},
		"b":  {fwd(200, http, 3), dropAll()},
		"c":  {fwd(100, host, 2), dropAll()},
		"s3": {fwd(100, host, 1), dropAll()},
	}}
	err := VerifyTransient(old, newState, Region{Ingress: "a", Match: host})
	var ce *CounterexampleError
	if !errors.As(err, &ce) || ce.Kind != "blackhole" {
		t.Fatalf("expected blackhole for the non-http class, got %v", err)
	}
	if ce.Packet.NWProto == packet.ProtoTCP && ce.Packet.TPDst == 80 {
		t.Fatalf("counterexample should be the non-http witness, got %v", ce.Packet)
	}

	// The reverse schedule — deleting the http detour Z while keeping Y —
	// is a policy bypass, not a blackhole, and verification (which checks
	// reachability, not waypointing) accepts it: both classes deliver.
	newState2 := &NetState{Ports: ports, Tables: map[string][]Rule{
		"a":  {fwd(200, host, 2), dropAll()},
		"b":  {fwd(50, host, 2), dropAll()},
		"c":  {fwd(100, host, 2), dropAll()},
		"s3": {fwd(100, host, 1), dropAll()},
	}}
	if err := VerifyTransient(old, newState2, Region{Ingress: "a", Match: host}); err != nil {
		t.Fatalf("reachability-safe schedule rejected: %v", err)
	}
}
