// Transient-state verification for consistent updates. A network update
// stage changes rules on some switches; while those FlowMods propagate,
// every switch is independently in its old or its new configuration. The
// verifier explores the union of both tables at every hop — a sound
// over-approximation of all interleavings when a stage changes at most
// one rule per header-space region per switch — and rejects stages whose
// mixed states can loop or blackhole traffic. This is the "local
// verification for global guarantees" obligation the update planner
// discharges before releasing each wave.
package hsa

import (
	"fmt"
	"strings"

	"rum/internal/of"
	"rum/internal/packet"
)

// PortPeer names the far end of a data-plane link: the neighbor switch
// and the ingress port the packet arrives on there.
type PortPeer struct {
	Switch string
	Port   uint16
}

// NetState is a network-wide forwarding snapshot: per-switch rule tables
// plus the data-plane adjacency. An output port with no PortPeer entry
// is an egress (host-facing) port; a switch with no table entry has an
// empty table.
type NetState struct {
	Tables map[string][]Rule
	Ports  map[string]map[uint16]PortPeer
}

// Region is one header-space equivalence class under verification: the
// traffic matching Match that enters the network at Ingress.
type Region struct {
	Ingress string
	Match   of.Match
}

func (r Region) String() string { return fmt.Sprintf("%s@%s", r.Match, r.Ingress) }

// Hop is one step of a counterexample trace.
type Hop struct {
	Switch  string
	OutPort uint16 // 0 and meaningless on the final hop of a blackhole
	Table   string // "old" or "new": which table the switch used
}

// CounterexampleError is the verifier's rejection: a concrete witness
// packet and the shortest mixed-state trace that loops or blackholes it.
type CounterexampleError struct {
	Kind   string // "loop" or "blackhole"
	Region Region
	Packet packet.Fields
	Path   []Hop
}

func (e *CounterexampleError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hsa: transient %s in region %s for %v: ", e.Kind, e.Region, e.Packet)
	for i, h := range e.Path {
		if i > 0 {
			b.WriteString(" -> ")
		}
		if i == len(e.Path)-1 {
			switch e.Kind {
			case "loop":
				fmt.Fprintf(&b, "%s (revisited)", h.Switch)
			default:
				fmt.Fprintf(&b, "%s (%s table drops)", h.Switch, h.Table)
			}
			continue
		}
		fmt.Fprintf(&b, "%s:%d (%s)", h.Switch, h.OutPort, h.Table)
	}
	return b.String()
}

// maxTraceHops bounds trace depth; any real forwarding path in the
// fabrics under study is far shorter, and loops are caught by state
// revisits long before the bound.
const maxTraceHops = 64

// VerifyTransient checks that the transition from oldState to newState is
// safe for the region: no mixed old/new state can loop its traffic, and
// — whenever the region is deliverable — no mixed state can drop traffic
// that has already been committed into the network.
//
// The obligations depend on what the pure states do with the region:
//
//   - both old and new deliver: every mixed trace must deliver;
//   - exactly one delivers (an install or retirement transition): mixed
//     traces may drop at the ingress switch (traffic not yet admitted, or
//     already retired) but never after a forwarding hop;
//   - neither delivers: only loop-freedom is required.
//
// The check is sound when the stage changes at most one rule per switch
// for the region — the planner's wave construction guarantees this.
func VerifyTransient(oldState, newState *NetState, reg Region) error {
	return verifyWitnesses(oldState, newState, reg, Witnesses(oldState, newState, reg))
}

func verifyWitnesses(oldState, newState *NetState, reg Region, witnesses []packet.Fields) error {
	for _, f := range witnesses {
		oldDelivers := pureTraceDelivers(oldState, reg.Ingress, f)
		newDelivers := pureTraceDelivers(newState, reg.Ingress, f)
		v := &verifier{
			old:            oldState,
			new:            newState,
			requireDeliver: oldDelivers && newDelivers,
			checkDrops:     oldDelivers || newDelivers,
		}
		v.explore(reg.Ingress, f, nil)
		if v.failure != nil {
			v.failure.Packet = f
			v.failure.Region = reg
			return v.failure
		}
	}
	return nil
}

// WitnessCache memoizes witness samples per table version for one
// region. A planner execution verifies every wave of a segment against a
// model in which almost every table is unchanged (unchanged tables are
// shared between waves by slice reference), so re-deriving the region's
// samples from every rule in the network on every wave dominates
// verification cost at fabric scale; the cache cuts each wave's scan to
// the tables that wave actually changed.
//
// A table version is identified by (first-element pointer, length).
// Holding the pointer keeps that version's backing array alive, so a key
// is never reused by a different table while cached. Callers must treat
// verified tables as immutable — replace slices, never edit in place.
type WitnessCache struct {
	reg    Region
	sample packet.Fields
	tables map[tableVersion][]packet.Fields
	// byMatch memoizes the region's sample per distinct rule match: a
	// fabric holds few distinct matches (one per flow plus the
	// infrastructure rules), so a table-version miss degrades to one map
	// probe per rule instead of a Normalize+Intersect per rule.
	byMatch map[of.Match]matchSample
	// primed, when non-nil, is a precomputed witness set covering every
	// state the caller will ever pass (see Prime); verification then
	// skips state scanning entirely.
	primed []packet.Fields
}

type matchSample struct {
	f        packet.Fields
	overlaps bool
}

type tableVersion struct {
	first *Rule
	n     int
}

// NewWitnessCache builds a cache whose samples are valid for reg only.
func NewWitnessCache(reg Region) *WitnessCache {
	return &WitnessCache{
		reg:     reg,
		sample:  Sample(reg.Match),
		tables:  make(map[tableVersion][]packet.Fields),
		byMatch: make(map[of.Match]matchSample),
	}
}

// VerifyTransient is VerifyTransient for the cache's region, reusing
// memoized per-table witness samples.
func (c *WitnessCache) VerifyTransient(oldState, newState *NetState) error {
	out := c.scanState(c.base(), oldState)
	for sw, table := range newState.Tables {
		if !sameRules(oldState.Tables[sw], table) {
			out = c.scanTable(out, table)
		}
	}
	return verifyWitnesses(oldState, newState, c.reg, out)
}

// VerifyTransientDelta behaves like VerifyTransient when newState
// differs from oldState only by rules whose matches appear in changed —
// the planner's case, where the new side is staged from a known wave.
// New-side witness samples are derived from the changed matches
// directly, so freshly staged tables (a guaranteed cache miss every
// wave) are never scanned. This over-approximates the witness set when
// a change removes rules; extra witnesses are sound — the verifier just
// checks more packets.
func (c *WitnessCache) VerifyTransientDelta(oldState, newState *NetState, changed []of.Match) error {
	if c.primed != nil {
		// Merge this wave's matches copy-on-write: they are normally
		// already primed, so the common path shares the primed slice.
		out := c.primed
		for _, m := range changed {
			ms := c.matchSample(m)
			if !ms.overlaps || containsSample(out, ms.f) {
				continue
			}
			out = append(append(make([]packet.Fields, 0, len(out)+1), out...), ms.f)
		}
		return verifyWitnesses(oldState, newState, c.reg, out)
	}
	out := c.base()
	for _, m := range changed {
		if ms := c.matchSample(m); ms.overlaps {
			out = addUniqueSample(out, ms.f)
		}
	}
	out = c.scanState(out, oldState)
	return verifyWitnesses(oldState, newState, c.reg, out)
}

// Prime fixes the cache's witness set up front: the union of the
// canonical region sample, one sample per rule in st, and one sample per
// match in extra. Subsequent VerifyTransient* calls skip state scanning
// and verify against this set. Priming is sound only while every rule of
// every state passed later carries a match already present in st or
// listed in extra — the planner's case, where the model evolves solely
// by folding the plan's own FlowMods. Callers that cannot promise that
// must not prime: surplus witnesses are harmless, missing ones are not.
func (c *WitnessCache) Prime(st *NetState, extra []of.Match) {
	out := c.scanState(c.base(), st)
	for _, m := range extra {
		if ms := c.matchSample(m); ms.overlaps {
			out = addUniqueSample(out, ms.f)
		}
	}
	c.primed = out
}

// PrimeMatches is Prime for callers that already know the complete
// match vocabulary of every state they will verify: one sample per
// distinct match, no state scan. The soundness contract is Prime's.
func (c *WitnessCache) PrimeMatches(matches []of.Match) {
	out := c.base()
	for _, m := range matches {
		if ms := c.matchSample(m); ms.overlaps {
			out = addUniqueSample(out, ms.f)
		}
	}
	c.primed = out
}

// base starts a witness list with the canonical region sample. The
// single-element backing is fresh per call so appends never share.
func (c *WitnessCache) base() []packet.Fields {
	return append(make([]packet.Fields, 0, 4), c.sample)
}

func (c *WitnessCache) scanState(out []packet.Fields, st *NetState) []packet.Fields {
	for _, table := range st.Tables {
		out = c.scanTable(out, table)
	}
	return out
}

func (c *WitnessCache) scanTable(out []packet.Fields, table []Rule) []packet.Fields {
	if len(table) == 0 {
		return out
	}
	key := tableVersion{&table[0], len(table)}
	samples, ok := c.tables[key]
	if !ok {
		for _, r := range table {
			if ms := c.matchSample(r.Match); ms.overlaps {
				samples = addUniqueSample(samples, ms.f)
			}
		}
		c.tables[key] = samples
	}
	for _, s := range samples {
		out = addUniqueSample(out, s)
	}
	return out
}

func (c *WitnessCache) matchSample(m of.Match) matchSample {
	ms, known := c.byMatch[m]
	if !known {
		if sub, overlaps := Intersect(c.reg.Match, m); overlaps {
			ms = matchSample{f: Sample(sub), overlaps: true}
		}
		c.byMatch[m] = ms
	}
	return ms
}

// addUniqueSample appends f unless present. Witness sets are tiny (one
// sample per distinct overlapping behaviour class), so linear dedup
// beats allocating a set per wave.
func addUniqueSample(out []packet.Fields, f packet.Fields) []packet.Fields {
	if containsSample(out, f) {
		return out
	}
	return append(out, f)
}

func containsSample(out []packet.Fields, f packet.Fields) bool {
	for _, g := range out {
		if g == f {
			return true
		}
	}
	return false
}

// Witnesses samples concrete packets covering the region's behaviour
// classes: the canonical region sample plus one sample per overlapping
// rule in either state (so e.g. an http-only detour rule contributes an
// http witness alongside the generic one).
func Witnesses(oldState, newState *NetState, reg Region) []packet.Fields {
	seen := make(map[packet.Fields]bool)
	var out []packet.Fields
	add := func(f packet.Fields) {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	add(Sample(reg.Match))
	scan := func(table []Rule) {
		for _, r := range table {
			if sub, ok := Intersect(reg.Match, r.Match); ok {
				add(Sample(sub))
			}
		}
	}
	for _, table := range oldState.Tables {
		scan(table)
	}
	for sw, table := range newState.Tables {
		// The planner shares unchanged tables between states by slice
		// reference; skip re-scanning those.
		if sameRules(oldState.Tables[sw], table) {
			continue
		}
		scan(table)
	}
	return out
}

// sameRules reports whether two tables are the identical slice (same
// backing array and length) — a cheap identity check, not deep equality.
func sameRules(a, b []Rule) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// pureTraceDelivers traces f through a single consistent state and
// reports whether it reaches an egress port.
func pureTraceDelivers(st *NetState, ingress string, f packet.Fields) bool {
	sw := ingress
	for hop := 0; hop < maxTraceHops; hop++ {
		r := lookup(st.Tables[sw], f)
		if r == nil {
			return false
		}
		next, _, ok := forward(st, sw, r, &f)
		if !ok {
			return false // drop rule
		}
		if next == "" {
			return true // egress
		}
		sw = next
	}
	return false
}

// forward applies the rule's actions to f and resolves the output. It
// returns the next switch ("" for egress) and false when the rule has no
// output action (an explicit drop). Multi-output rules follow the first
// output (the scenarios under verification are unicast).
func forward(st *NetState, sw string, r *Rule, f *packet.Fields) (next string, outPort uint16, ok bool) {
	for _, a := range r.Actions {
		switch act := a.(type) {
		case of.ActionOutput:
			peer, isLink := st.Ports[sw][act.Port]
			if !isLink {
				return "", act.Port, true // egress
			}
			f.InPort = peer.Port
			return peer.Switch, act.Port, true
		case of.ActionSetVLANVID:
			f.DLVLAN = act.VID
		case of.ActionSetVLANPCP:
			f.DLPCP = act.PCP
		case of.ActionStripVLAN:
			f.DLVLAN = packet.VLANNone
			f.DLPCP = 0
		case of.ActionSetDLAddr:
			if act.Dst {
				f.DLDst = act.Addr
			} else {
				f.DLSrc = act.Addr
			}
		case of.ActionSetNWAddr:
			if act.Dst {
				f.NWDst = act.Addr
			} else {
				f.NWSrc = act.Addr
			}
		case of.ActionSetNWTOS:
			f.NWTOS = act.TOS
		case of.ActionSetTPPort:
			if act.Dst {
				f.TPDst = act.Port
			} else {
				f.TPSrc = act.Port
			}
		}
	}
	return "", 0, false // no output action: drop
}

// traceState identifies one exploration state. Fields participate because
// header rewrites change downstream behaviour.
type traceState struct {
	sw string
	f  packet.Fields
}

type verifier struct {
	old, new       *NetState
	requireDeliver bool // both pure states deliver: any drop is a failure
	checkDrops     bool // at least one pure state delivers
	// safe memoizes fully-explored safe states; a linear scan, since the
	// bounded traces of real fabrics visit a handful of states.
	safe    []traceState
	failure *CounterexampleError
}

func (v *verifier) isSafe(st traceState) bool {
	for _, s := range v.safe {
		if s == st {
			return true
		}
	}
	return false
}

// explore walks every mixed old/new trace from (sw, f). path holds the
// hops taken so far; a revisit of the current traceState within path is a
// forwarding loop. It records the shortest failure found and returns true
// when every branch from this state is safe.
func (v *verifier) explore(sw string, f packet.Fields, path []Hop) bool {
	st := traceState{sw, f}
	if v.isSafe(st) {
		return true
	}
	if len(path) >= maxTraceHops {
		v.record("loop", append(path, Hop{Switch: sw}))
		return false
	}
	ok := true
	for _, side := range []struct {
		name string
		st   *NetState
	}{{"old", v.old}, {"new", v.new}} {
		r := lookup(side.st.Tables[sw], f)
		if r == nil {
			ok = v.drop(sw, side.name, path) && ok
			continue
		}
		nf := f
		next, outPort, fwd := forward(side.st, sw, r, &nf)
		if !fwd {
			ok = v.drop(sw, side.name, path) && ok
			continue
		}
		hop := Hop{Switch: sw, OutPort: outPort, Table: side.name}
		if next == "" {
			continue // delivered
		}
		if v.onPath(path, next, nf) {
			v.record("loop", append(append(path[:len(path):len(path)], hop), Hop{Switch: next}))
			ok = false
			continue
		}
		ok = v.explore(next, nf, append(path[:len(path):len(path)], hop)) && ok
	}
	if ok {
		v.safe = append(v.safe, st)
	}
	return ok
}

// onPath reports whether the switch was already visited on this trace.
// Comparing on switch identity alone (ignoring header rewrites) is
// conservative: it never misses a forwarding loop, at worst flagging a
// legitimate re-traversal of a header-rewriting switch — a pattern none
// of the plans built here produce.
func (v *verifier) onPath(path []Hop, sw string, _ packet.Fields) bool {
	for _, h := range path {
		if h.Switch == sw {
			return true
		}
	}
	return false
}

// drop classifies a table-miss or drop-action at sw and records a
// blackhole when the obligations forbid it. Returns false on failure.
func (v *verifier) drop(sw, table string, path []Hop) bool {
	if !v.checkDrops {
		return true
	}
	if len(path) == 0 && !v.requireDeliver {
		return true // install/retirement transition: not yet admitted
	}
	v.record("blackhole", append(path[:len(path):len(path)], Hop{Switch: sw, Table: table}))
	return false
}

// record keeps the shortest counterexample found so far.
func (v *verifier) record(kind string, path []Hop) {
	if v.failure == nil || len(path) < len(v.failure.Path) {
		v.failure = &CounterexampleError{Kind: kind, Path: path}
	}
}
