package hsa

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"rum/internal/of"
	"rum/internal/packet"
)

func exactIPMatch(src, dst string) of.Match {
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = packet.EtherTypeIPv4
	m.SetNWSrc(netip.MustParseAddr(src))
	m.SetNWDst(netip.MustParseAddr(dst))
	return m
}

func TestCoversBasics(t *testing.T) {
	m := exactIPMatch("10.0.0.1", "10.0.0.2")
	f := Sample(m)
	if !Covers(m, f) {
		t.Fatal("match does not cover its own sample")
	}
	f.NWSrc = [4]byte{10, 0, 0, 9}
	if Covers(m, f) {
		t.Fatal("match covers packet with different nw_src")
	}
	if !Covers(of.MatchAll(), f) {
		t.Fatal("MatchAll does not cover an arbitrary packet")
	}
}

func TestCoversPrefix(t *testing.T) {
	m := of.MatchAll()
	m.NWDst = [4]byte{10, 1, 2, 0}
	m.SetNWDstWildBits(8) // 10.1.2.0/24
	f := packet.Fields{NWDst: [4]byte{10, 1, 2, 200}}
	if !Covers(m, f) {
		t.Error("prefix /24 does not cover in-range address")
	}
	f.NWDst = [4]byte{10, 1, 3, 1}
	if Covers(m, f) {
		t.Error("prefix /24 covers out-of-range address")
	}
}

func TestCoversVLANUntagged(t *testing.T) {
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLVLAN
	m.DLVLAN = packet.VLANNone // match untagged
	f := packet.Fields{DLVLAN: packet.VLANNone}
	if !Covers(m, f) {
		t.Error("untagged match does not cover untagged packet")
	}
	f.DLVLAN = 5
	if Covers(m, f) {
		t.Error("untagged match covers tagged packet")
	}
}

func TestIntersectDisjoint(t *testing.T) {
	a := exactIPMatch("10.0.0.1", "10.0.0.2")
	b := exactIPMatch("10.0.0.3", "10.0.0.2")
	if _, ok := Intersect(a, b); ok {
		t.Error("disjoint matches intersect")
	}
	if Overlaps(a, b) {
		t.Error("Overlaps true for disjoint matches")
	}
}

func TestIntersectPrefixes(t *testing.T) {
	a := of.MatchAll()
	a.NWDst = [4]byte{10, 1, 0, 0}
	a.SetNWDstWildBits(16) // 10.1/16
	b := of.MatchAll()
	b.NWDst = [4]byte{10, 1, 2, 0}
	b.SetNWDstWildBits(8) // 10.1.2/24
	got, ok := Intersect(a, b)
	if !ok {
		t.Fatal("nested prefixes do not intersect")
	}
	if got.NWDstWildBits() != 8 || got.NWDst != [4]byte{10, 1, 2, 0} {
		t.Errorf("intersection = %v, want 10.1.2.0/24", got)
	}
	c := of.MatchAll()
	c.NWDst = [4]byte{10, 2, 0, 0}
	c.SetNWDstWildBits(16)
	if _, ok := Intersect(a, c); ok {
		t.Error("disjoint prefixes intersect")
	}
}

func TestSubset(t *testing.T) {
	wide := of.MatchAll()
	wide.NWDst = [4]byte{10, 0, 0, 0}
	wide.SetNWDstWildBits(24) // 10/8
	narrow := exactIPMatch("10.5.5.5", "10.9.9.9")
	if !Subset(narrow, of.MatchAll()) {
		t.Error("exact match not subset of MatchAll")
	}
	n2 := of.MatchAll()
	n2.NWDst = [4]byte{10, 3, 0, 0}
	n2.SetNWDstWildBits(16)
	if !Subset(n2, wide) {
		t.Error("10.3/16 not subset of 10/8")
	}
	if Subset(wide, n2) {
		t.Error("10/8 subset of 10.3/16")
	}
}

// Property: Sample(m) is always covered by m.
func TestSampleCoveredProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMatch(r)
		return Covers(m, Sample(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: if both matches cover a packet, their intersection exists and
// covers it too; and the intersection is a subset of both.
func TestIntersectSoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomMatch(r), randomMatch(r)
		got, ok := Intersect(a, b)
		pa, pb := Sample(a), Sample(b)
		if Covers(b, pa) || Covers(a, pb) {
			// Some packet is plausibly in both; at minimum, when a sample
			// of one is covered by the other the intersection must exist.
			if Covers(b, pa) && !ok {
				return false
			}
		}
		if !ok {
			return true
		}
		if !Subset(got, a) || !Subset(got, b) {
			return false
		}
		return Covers(a, Sample(got)) && Covers(b, Sample(got))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: intersection is commutative after normalization.
func TestIntersectCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomMatch(r), randomMatch(r)
		m1, ok1 := Intersect(a, b)
		m2, ok2 := Intersect(b, a)
		if ok1 != ok2 {
			return false
		}
		return !ok1 || m1 == m2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// randomMatch generates structured random matches: a blend of exact flow
// rules, prefixes, and wildcards so the property tests explore realistic
// table shapes.
func randomMatch(r *rand.Rand) of.Match {
	m := of.MatchAll()
	if r.Intn(2) == 0 {
		m.Wildcards &^= of.WcDLType
		m.DLType = packet.EtherTypeIPv4
	}
	if r.Intn(2) == 0 {
		m.SetNWSrcWildBits(r.Intn(33))
		m.NWSrc = [4]byte{10, byte(r.Intn(4)), byte(r.Intn(4)), byte(r.Intn(4))}
	}
	if r.Intn(2) == 0 {
		m.SetNWDstWildBits(r.Intn(33))
		m.NWDst = [4]byte{10, byte(r.Intn(4)), byte(r.Intn(4)), byte(r.Intn(4))}
	}
	if r.Intn(3) == 0 {
		m.Wildcards &^= of.WcNWProto
		m.NWProto = []uint8{packet.ProtoTCP, packet.ProtoUDP}[r.Intn(2)]
	}
	if r.Intn(3) == 0 {
		m.Wildcards &^= of.WcTPDst
		m.TPDst = uint16(r.Intn(4))
	}
	if r.Intn(4) == 0 {
		m.Wildcards &^= of.WcNWTOS
		m.NWTOS = uint8(r.Intn(4)) << 2
	}
	return m.Normalize()
}

func rule(prio uint16, m of.Match, acts ...of.Action) Rule {
	return Rule{Priority: prio, Match: m, Actions: acts}
}

func TestFindProbeSimple(t *testing.T) {
	probed := rule(100, exactIPMatch("10.0.0.1", "10.0.0.2"), of.ActionOutput{Port: 2})
	table := []Rule{
		rule(1, of.MatchAll()), // drop-all fallback
	}
	pin := of.MatchAll()
	pin.Wildcards &^= of.WcNWTOS
	pin.NWTOS = 0x0c // H = S_C
	f, err := FindProbe(probed, table, pin)
	if err != nil {
		t.Fatal(err)
	}
	if !Covers(probed.Match, f) {
		t.Error("probe not covered by probed rule")
	}
	if f.NWTOS != 0x0c {
		t.Errorf("probe does not honor pin: tos=%d", f.NWTOS)
	}
}

func TestFindProbeAvoidsHigherPriority(t *testing.T) {
	// Probed rule forwards 10.1/16; a higher-priority ACL punches a hole
	// for tp_dst=80. The probe must avoid port 80.
	probedMatch := of.MatchAll()
	probedMatch.NWDst = [4]byte{10, 1, 0, 0}
	probedMatch.SetNWDstWildBits(16)
	probed := rule(100, probedMatch, of.ActionOutput{Port: 2})

	acl := of.MatchAll()
	acl.NWDst = [4]byte{10, 1, 0, 0}
	acl.SetNWDstWildBits(16)
	acl.Wildcards &^= of.WcTPDst
	acl.TPDst = 80
	table := []Rule{
		rule(200, acl, of.ActionOutput{Port: 9}),
		rule(1, of.MatchAll()),
	}
	f, err := FindProbe(probed, table, of.MatchAll())
	if err != nil {
		t.Fatal(err)
	}
	if f.TPDst == 80 {
		t.Error("probe hits the higher-priority ACL")
	}
	if !Covers(probed.Match, f) {
		t.Error("probe escaped the probed rule's region")
	}
}

func TestFindProbeFullyShadowed(t *testing.T) {
	// The probed rule is fully covered by a higher-priority rule: no probe
	// exists (paper: fall back to control-plane technique).
	probed := rule(10, exactIPMatch("10.0.0.1", "10.0.0.2"), of.ActionOutput{Port: 2})
	shadow := rule(100, exactIPMatch("10.0.0.1", "10.0.0.2"), of.ActionOutput{Port: 3})
	_, err := FindProbe(probed, []Rule{shadow}, of.MatchAll())
	if err == nil {
		t.Fatal("expected ErrNoProbe for fully shadowed rule")
	}
}

func TestFindProbeIndistinguishableFallback(t *testing.T) {
	// Lower-priority rule with the same action: probing cannot distinguish
	// (paper §3.2.2 second issue).
	probed := rule(100, exactIPMatch("10.0.0.1", "10.0.0.2"), of.ActionOutput{Port: 2})
	fallback := rule(1, of.MatchAll(), of.ActionOutput{Port: 2})
	_, err := FindProbe(probed, []Rule{fallback}, of.MatchAll())
	if err == nil {
		t.Fatal("expected ErrNoProbe for indistinguishable fallback")
	}
}

func TestFindProbeDropRule(t *testing.T) {
	// Probing a drop rule works when a lower-priority rule forwards
	// (the ACL + forwarding combination the paper calls out as common).
	aclMatch := exactIPMatch("10.0.0.1", "10.0.0.2")
	aclMatch.Wildcards &^= of.WcTPDst
	aclMatch.TPDst = 23
	probed := rule(200, aclMatch) // drop (no actions)
	fwd := rule(10, exactIPMatch("10.0.0.1", "10.0.0.2"), of.ActionOutput{Port: 2})
	f, err := FindProbe(probed, []Rule{fwd}, of.MatchAll())
	if err != nil {
		t.Fatal(err)
	}
	if f.TPDst != 23 {
		t.Errorf("drop-rule probe has tp_dst=%d, want 23", f.TPDst)
	}
}

func TestFindProbeEscapesIdenticalFallbackByPort(t *testing.T) {
	// Fallback covers only tp_dst=7 with the same action; the probe should
	// move to another port value where there is no fallback at all.
	probed := rule(100, exactIPMatch("10.0.0.1", "10.0.0.2"), of.ActionOutput{Port: 2})
	fbMatch := exactIPMatch("10.0.0.1", "10.0.0.2")
	fbMatch.Wildcards &^= of.WcTPDst
	fbMatch.TPDst = 7
	fallback := rule(1, fbMatch, of.ActionOutput{Port: 2})
	f, err := FindProbe(probed, []Rule{fallback}, of.MatchAll())
	if err != nil {
		t.Fatal(err)
	}
	if f.TPDst == 7 {
		t.Error("probe still hits the indistinguishable fallback")
	}
}

// Property: any probe FindProbe returns satisfies its contract.
func TestFindProbeContractProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var table []Rule
		n := r.Intn(8)
		for i := 0; i < n; i++ {
			var acts []of.Action
			if r.Intn(4) != 0 {
				acts = append(acts, of.ActionOutput{Port: uint16(1 + r.Intn(4))})
			}
			table = append(table, rule(uint16(r.Intn(300)), randomMatch(r), acts...))
		}
		probed := rule(uint16(1+r.Intn(300)), randomMatch(r), of.ActionOutput{Port: uint16(1 + r.Intn(4))})
		probe, err := FindProbe(probed, table, of.MatchAll())
		if err != nil {
			return true // no probe is a legal outcome
		}
		if !Covers(probed.Match, probe) {
			return false
		}
		if hp := highestCover(table, probe, probed.Priority); hp != nil {
			return false
		}
		fb := lookup(table, probe)
		return fb == nil || !of.ActionsEqual(fb.Actions, probed.Actions)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestColorGraphTriangle(t *testing.T) {
	adj := map[uint64][]uint64{
		1: {2, 3},
		2: {3},
		3: nil,
	}
	colors := ColorGraph(adj)
	if len(colors) != 3 {
		t.Fatalf("colored %d nodes, want 3", len(colors))
	}
	for n, ns := range adj {
		for _, o := range ns {
			if colors[n] == colors[o] {
				t.Errorf("adjacent nodes %d and %d share color %d", n, o, colors[n])
			}
		}
	}
	if NumColors(colors) != 3 {
		t.Errorf("triangle needs 3 colors, got %d", NumColors(colors))
	}
}

func TestColorGraphPathUsesTwoColors(t *testing.T) {
	// Path graph: 1-2-3-4-5 should 2-color.
	adj := map[uint64][]uint64{1: {2}, 2: {3}, 3: {4}, 4: {5}}
	colors := ColorGraph(adj)
	if n := NumColors(colors); n != 2 {
		t.Errorf("path colored with %d colors, want 2", n)
	}
}

func TestColorGraphProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		adj := make(map[uint64][]uint64)
		for i := 0; i < n; i++ {
			adj[uint64(i)] = nil
		}
		for i := 0; i < n*2; i++ {
			a, b := uint64(r.Intn(n)), uint64(r.Intn(n))
			adj[a] = append(adj[a], b)
		}
		colors := ColorGraph(adj)
		if len(colors) != n {
			return false
		}
		for a, ns := range adj {
			for _, b := range ns {
				if a != b && colors[a] == colors[b] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
