package hsa

import "sort"

// ColorGraph assigns each node a small non-negative color such that
// adjacent nodes get different colors, using the Welsh–Powell heuristic the
// paper cites (§3.2.2, [15]) to minimize the number of switch-specific
// header values general probing consumes: only neighboring switches need
// distinct probe-catch values S_i.
//
// adj maps each node to its neighbors; edges may be listed on either or
// both endpoints. The result maps every node (including isolated ones) to a
// color.
func ColorGraph(adj map[uint64][]uint64) map[uint64]int {
	// Symmetrize the adjacency so one-sided edge lists still color safely.
	neighbors := make(map[uint64]map[uint64]bool, len(adj))
	ensure := func(n uint64) map[uint64]bool {
		if m, ok := neighbors[n]; ok {
			return m
		}
		m := make(map[uint64]bool)
		neighbors[n] = m
		return m
	}
	for n, ns := range adj {
		ensure(n)
		for _, o := range ns {
			if o == n {
				continue // ignore self loops
			}
			ensure(n)[o] = true
			ensure(o)[n] = true
		}
	}
	nodes := make([]uint64, 0, len(neighbors))
	for n := range neighbors {
		nodes = append(nodes, n)
	}
	// Welsh–Powell: descending degree, node id as deterministic tie-break.
	sort.Slice(nodes, func(i, j int) bool {
		di, dj := len(neighbors[nodes[i]]), len(neighbors[nodes[j]])
		if di != dj {
			return di > dj
		}
		return nodes[i] < nodes[j]
	})
	colors := make(map[uint64]int, len(nodes))
	for _, n := range nodes {
		used := make(map[int]bool)
		for o := range neighbors[n] {
			if c, ok := colors[o]; ok {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[n] = c
	}
	return colors
}

// NumColors returns the number of distinct colors in a coloring.
func NumColors(colors map[uint64]int) int {
	distinct := make(map[int]bool, len(colors))
	for _, c := range colors {
		distinct[c] = true
	}
	return len(distinct)
}
