// Package hsa implements the header-space reasoning RUM's probing needs:
// deciding whether a match covers a packet, intersecting and comparing
// matches, sampling concrete packets out of a match region, and — the core
// of general probing (§3.2.2 of the paper) — synthesizing a probe packet
// that hits exactly the probed rule while remaining distinguishable from
// the rules below it. Finding such a packet is NP-hard in general; as the
// paper notes (citing Header Space Analysis and ATPG), real forwarding
// tables admit fast heuristics, which is what FindProbe implements.
package hsa

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rum/internal/of"
	"rum/internal/packet"
)

// Rule is the abstract view of a flow-table entry used for probe
// computation.
type Rule struct {
	Priority uint16
	Match    of.Match
	Actions  []of.Action
}

// Covers reports whether the match accepts the concrete fields. VLAN
// matching follows OpenFlow 1.0: dl_vlan == 0xffff matches untagged
// packets, which is the same sentinel packet.VLANNone uses.
func Covers(m of.Match, f packet.Fields) bool {
	if m.Wildcards&of.WcInPort == 0 && m.InPort != f.InPort {
		return false
	}
	if m.Wildcards&of.WcDLSrc == 0 && m.DLSrc != of.EthAddr(f.DLSrc) {
		return false
	}
	if m.Wildcards&of.WcDLDst == 0 && m.DLDst != of.EthAddr(f.DLDst) {
		return false
	}
	if m.Wildcards&of.WcDLVLAN == 0 && m.DLVLAN != f.DLVLAN {
		return false
	}
	if m.Wildcards&of.WcDLVLANPCP == 0 && m.DLVLANPCP != f.DLPCP {
		return false
	}
	if m.Wildcards&of.WcDLType == 0 && m.DLType != f.DLType {
		return false
	}
	if m.Wildcards&of.WcNWTOS == 0 && m.NWTOS != f.NWTOS {
		return false
	}
	if m.Wildcards&of.WcNWProto == 0 && m.NWProto != f.NWProto {
		return false
	}
	if !prefixCovers(m.NWSrc, m.NWSrcWildBits(), f.NWSrc) {
		return false
	}
	if !prefixCovers(m.NWDst, m.NWDstWildBits(), f.NWDst) {
		return false
	}
	if m.Wildcards&of.WcTPSrc == 0 && m.TPSrc != f.TPSrc {
		return false
	}
	if m.Wildcards&of.WcTPDst == 0 && m.TPDst != f.TPDst {
		return false
	}
	return true
}

func prefixCovers(addr [4]byte, wildBits int, v [4]byte) bool {
	if wildBits >= 32 {
		return true
	}
	mask := ^uint32(0) << uint(wildBits)
	return binary.BigEndian.Uint32(addr[:])&mask == binary.BigEndian.Uint32(v[:])&mask
}

// Intersect computes the match accepted by both a and b. ok is false when
// the intersection is empty.
func Intersect(a, b of.Match) (m of.Match, ok bool) {
	m = of.MatchAll()
	type exact struct {
		wc       uint32
		aSet     bool
		bSet     bool
		aEqualsB bool
		assign   func(from *of.Match)
	}
	an, bn := a.Normalize(), b.Normalize()
	fields := []exact{
		{of.WcInPort, an.Wildcards&of.WcInPort == 0, bn.Wildcards&of.WcInPort == 0, an.InPort == bn.InPort, nil},
		{of.WcDLSrc, an.Wildcards&of.WcDLSrc == 0, bn.Wildcards&of.WcDLSrc == 0, an.DLSrc == bn.DLSrc, nil},
		{of.WcDLDst, an.Wildcards&of.WcDLDst == 0, bn.Wildcards&of.WcDLDst == 0, an.DLDst == bn.DLDst, nil},
		{of.WcDLVLAN, an.Wildcards&of.WcDLVLAN == 0, bn.Wildcards&of.WcDLVLAN == 0, an.DLVLAN == bn.DLVLAN, nil},
		{of.WcDLVLANPCP, an.Wildcards&of.WcDLVLANPCP == 0, bn.Wildcards&of.WcDLVLANPCP == 0, an.DLVLANPCP == bn.DLVLANPCP, nil},
		{of.WcDLType, an.Wildcards&of.WcDLType == 0, bn.Wildcards&of.WcDLType == 0, an.DLType == bn.DLType, nil},
		{of.WcNWTOS, an.Wildcards&of.WcNWTOS == 0, bn.Wildcards&of.WcNWTOS == 0, an.NWTOS == bn.NWTOS, nil},
		{of.WcNWProto, an.Wildcards&of.WcNWProto == 0, bn.Wildcards&of.WcNWProto == 0, an.NWProto == bn.NWProto, nil},
		{of.WcTPSrc, an.Wildcards&of.WcTPSrc == 0, bn.Wildcards&of.WcTPSrc == 0, an.TPSrc == bn.TPSrc, nil},
		{of.WcTPDst, an.Wildcards&of.WcTPDst == 0, bn.Wildcards&of.WcTPDst == 0, an.TPDst == bn.TPDst, nil},
	}
	for _, fd := range fields {
		switch {
		case fd.aSet && fd.bSet:
			if !fd.aEqualsB {
				return m, false
			}
			m.Wildcards &^= fd.wc
		case fd.aSet || fd.bSet:
			m.Wildcards &^= fd.wc
		}
	}
	// Copy the exact-field values from whichever side fixed them.
	pick := func(wc uint32) *of.Match {
		if an.Wildcards&wc == 0 {
			return &an
		}
		return &bn
	}
	if m.Wildcards&of.WcInPort == 0 {
		m.InPort = pick(of.WcInPort).InPort
	}
	if m.Wildcards&of.WcDLSrc == 0 {
		m.DLSrc = pick(of.WcDLSrc).DLSrc
	}
	if m.Wildcards&of.WcDLDst == 0 {
		m.DLDst = pick(of.WcDLDst).DLDst
	}
	if m.Wildcards&of.WcDLVLAN == 0 {
		m.DLVLAN = pick(of.WcDLVLAN).DLVLAN
	}
	if m.Wildcards&of.WcDLVLANPCP == 0 {
		m.DLVLANPCP = pick(of.WcDLVLANPCP).DLVLANPCP
	}
	if m.Wildcards&of.WcDLType == 0 {
		m.DLType = pick(of.WcDLType).DLType
	}
	if m.Wildcards&of.WcNWTOS == 0 {
		m.NWTOS = pick(of.WcNWTOS).NWTOS
	}
	if m.Wildcards&of.WcNWProto == 0 {
		m.NWProto = pick(of.WcNWProto).NWProto
	}
	if m.Wildcards&of.WcTPSrc == 0 {
		m.TPSrc = pick(of.WcTPSrc).TPSrc
	}
	if m.Wildcards&of.WcTPDst == 0 {
		m.TPDst = pick(of.WcTPDst).TPDst
	}
	// IPv4 prefixes: the narrower prefix wins, but the two must agree on
	// the wider prefix's fixed bits.
	srcAddr, srcBits, ok := intersectPrefix(an.NWSrc, an.NWSrcWildBits(), bn.NWSrc, bn.NWSrcWildBits())
	if !ok {
		return m, false
	}
	m.NWSrc = srcAddr
	m.SetNWSrcWildBits(srcBits)
	dstAddr, dstBits, ok := intersectPrefix(an.NWDst, an.NWDstWildBits(), bn.NWDst, bn.NWDstWildBits())
	if !ok {
		return m, false
	}
	m.NWDst = dstAddr
	m.SetNWDstWildBits(dstBits)
	return m.Normalize(), true
}

func intersectPrefix(aAddr [4]byte, aWild int, bAddr [4]byte, bWild int) ([4]byte, int, bool) {
	wide, narrow := aWild, bWild
	narrowAddr := bAddr
	if aWild < bWild {
		wide, narrow = bWild, aWild
		narrowAddr = aAddr
	}
	if wide < 32 {
		mask := ^uint32(0) << uint(wide)
		if binary.BigEndian.Uint32(aAddr[:])&mask != binary.BigEndian.Uint32(bAddr[:])&mask {
			return [4]byte{}, 0, false
		}
	}
	return narrowAddr, narrow, true
}

// Subset reports whether every packet matched by a is also matched by b.
func Subset(a, b of.Match) bool {
	got, ok := Intersect(a, b)
	if !ok {
		return false
	}
	return got == a.Normalize()
}

// Overlaps reports whether some packet is matched by both a and b.
func Overlaps(a, b of.Match) bool {
	_, ok := Intersect(a, b)
	return ok
}

// Sample produces a concrete packet-field assignment inside the match
// region, choosing canonical defaults for wildcarded fields: untagged
// IPv4/UDP with zeroed free bits.
func Sample(m of.Match) packet.Fields {
	m = m.Normalize()
	var f packet.Fields
	f.InPort = m.InPort
	f.DLSrc = m.DLSrc
	f.DLDst = m.DLDst
	if m.Wildcards&of.WcDLVLAN == 0 {
		f.DLVLAN = m.DLVLAN
	} else {
		f.DLVLAN = packet.VLANNone
	}
	f.DLPCP = m.DLVLANPCP
	if m.Wildcards&of.WcDLType == 0 {
		f.DLType = m.DLType
	} else {
		f.DLType = packet.EtherTypeIPv4
	}
	f.NWTOS = m.NWTOS
	if m.Wildcards&of.WcNWProto == 0 {
		f.NWProto = m.NWProto
	} else {
		f.NWProto = packet.ProtoUDP
	}
	f.NWSrc = m.NWSrc // normalized: wildcarded low bits already zero
	f.NWDst = m.NWDst
	f.TPSrc = m.TPSrc
	f.TPDst = m.TPDst
	return f
}

// ErrNoProbe is returned when no probe packet can reveal the rule's
// data-plane installation; the caller must fall back to a control-plane
// technique (paper §3.2.2).
var ErrNoProbe = errors.New("hsa: no distinguishing probe packet exists")

// FindProbe synthesizes a probe for rule against the given table. pin is an
// additional constraint the probe must satisfy (general probing pins the
// reserved header field H to the next hop's probe-catch value S_C). The
// table must contain the rules active (or about to be active) on the probed
// switch, excluding the probed rule itself.
//
// The returned fields satisfy:
//  1. rule.Match and pin cover them;
//  2. no rule in table with priority > rule.Priority covers them;
//  3. the highest-priority table rule that does cover them (the fallback
//     the packet would hit while the probed rule is absent) has actions
//     distinguishable from rule.Actions — or no rule covers them at all
//     (OpenFlow 1.0 default: drop or send-to-controller, either way
//     distinguishable from a forwarding rule).
//
// The search is heuristic: it starts from a canonical sample and greedily
// mutates free fields to escape conflicting higher-priority regions, which
// resolves all practical tables (exact-match flow rules, ACL-over-routing
// patterns) in a handful of iterations.
func FindProbe(rule Rule, table []Rule, pin of.Match) (packet.Fields, error) {
	base, ok := Intersect(rule.Match, pin)
	if !ok {
		return packet.Fields{}, fmt.Errorf("hsa: pin constraint %v excludes rule match %v: %w", pin, rule.Match, ErrNoProbe)
	}
	cand := Sample(base)
	const maxIters = 64
	for iter := 0; iter < maxIters; iter++ {
		if hp := highestCover(table, cand, rule.Priority); hp != nil {
			next, ok := escape(base, cand, hp.Match)
			if !ok {
				return packet.Fields{}, fmt.Errorf("hsa: rule %v shadowed by higher-priority %v: %w", rule.Match, hp.Match, ErrNoProbe)
			}
			cand = next
			continue
		}
		// No higher-priority rule matches; check the fallback is
		// distinguishable.
		fb := lookup(table, cand)
		if fb == nil || !of.ActionsEqual(fb.Actions, rule.Actions) {
			return cand, nil
		}
		// The fallback behaves identically; try to move off it while
		// staying inside the probe region.
		next, ok := escape(base, cand, fb.Match)
		if !ok {
			return packet.Fields{}, fmt.Errorf("hsa: fallback rule %v has identical actions: %w", fb.Match, ErrNoProbe)
		}
		cand = next
	}
	return packet.Fields{}, fmt.Errorf("hsa: probe search did not converge: %w", ErrNoProbe)
}

// highestCover returns the highest-priority rule with priority strictly
// above minPrio that covers f, or nil.
func highestCover(table []Rule, f packet.Fields, minPrio uint16) *Rule {
	var best *Rule
	for i := range table {
		r := &table[i]
		if r.Priority <= minPrio {
			continue
		}
		if !Covers(r.Match, f) {
			continue
		}
		if best == nil || r.Priority > best.Priority {
			best = r
		}
	}
	return best
}

// lookup returns the highest-priority rule covering f (first match wins on
// priority ties, mirroring insertion order in the flow table), or nil.
func lookup(table []Rule, f packet.Fields) *Rule {
	var best *Rule
	for i := range table {
		r := &table[i]
		if !Covers(r.Match, f) {
			continue
		}
		if best == nil || r.Priority > best.Priority {
			best = r
		}
	}
	return best
}

// escape mutates cand on one field that base leaves free but blocker pins,
// so the result stays inside base and outside blocker. ok is false when
// every field that could distinguish them is fixed by base (blocker fully
// shadows the probe region).
func escape(base of.Match, cand packet.Fields, blocker of.Match) (packet.Fields, bool) {
	base = base.Normalize()
	blocker = blocker.Normalize()
	// Transport ports: most rooms to move, try them first.
	if base.Wildcards&of.WcTPSrc != 0 && blocker.Wildcards&of.WcTPSrc == 0 {
		cand.TPSrc = blocker.TPSrc + 1
		return cand, true
	}
	if base.Wildcards&of.WcTPDst != 0 && blocker.Wildcards&of.WcTPDst == 0 {
		cand.TPDst = blocker.TPDst + 1
		return cand, true
	}
	if base.Wildcards&of.WcNWProto != 0 && blocker.Wildcards&of.WcNWProto == 0 {
		if blocker.NWProto == packet.ProtoUDP {
			cand.NWProto = packet.ProtoTCP
		} else {
			cand.NWProto = packet.ProtoUDP
		}
		return cand, true
	}
	if base.Wildcards&of.WcNWTOS != 0 && blocker.Wildcards&of.WcNWTOS == 0 {
		cand.NWTOS = blocker.NWTOS ^ 0x04 // stay off the blocker's value
		return cand, true
	}
	if base.Wildcards&of.WcDLVLANPCP != 0 && blocker.Wildcards&of.WcDLVLANPCP == 0 {
		cand.DLPCP = (blocker.DLVLANPCP + 1) & 7
		return cand, true
	}
	// IPv4 addresses: flip a bit that base wildcards but blocker fixes.
	if newAddr, ok := escapePrefix(base.NWSrc, base.NWSrcWildBits(), cand.NWSrc, blocker.NWSrcWildBits()); ok {
		cand.NWSrc = newAddr
		return cand, true
	}
	if newAddr, ok := escapePrefix(base.NWDst, base.NWDstWildBits(), cand.NWDst, blocker.NWDstWildBits()); ok {
		cand.NWDst = newAddr
		return cand, true
	}
	if base.Wildcards&of.WcDLSrc != 0 && blocker.Wildcards&of.WcDLSrc == 0 {
		a := blocker.DLSrc
		a[5] ^= 1
		cand.DLSrc = a
		return cand, true
	}
	if base.Wildcards&of.WcDLDst != 0 && blocker.Wildcards&of.WcDLDst == 0 {
		a := blocker.DLDst
		a[5] ^= 1
		cand.DLDst = a
		return cand, true
	}
	if base.Wildcards&of.WcInPort != 0 && blocker.Wildcards&of.WcInPort == 0 {
		cand.InPort = blocker.InPort + 1
		return cand, true
	}
	if base.Wildcards&of.WcDLVLAN != 0 && blocker.Wildcards&of.WcDLVLAN == 0 {
		if blocker.DLVLAN == packet.VLANNone {
			cand.DLVLAN = 1
		} else {
			cand.DLVLAN = packet.VLANNone
		}
		return cand, true
	}
	return cand, false
}

// escapePrefix flips the lowest address bit that base wildcards but the
// blocker's prefix fixes, moving cand out of the blocker's prefix while
// staying inside base's.
func escapePrefix(baseAddr [4]byte, baseWild int, cand [4]byte, blockerWild int) ([4]byte, bool) {
	if baseWild <= blockerWild {
		return cand, false // blocker is as wide or wider; no bit to flip
	}
	// Bits [blockerWild, baseWild) are free in base but fixed in blocker.
	v := binary.BigEndian.Uint32(cand[:])
	v ^= 1 << uint(blockerWild)
	var out [4]byte
	binary.BigEndian.PutUint32(out[:], v)
	// Ensure we stayed within base's prefix (we flipped below baseWild, so
	// we did, but keep the check for safety).
	if !prefixCovers(baseAddr, baseWild, out) {
		return cand, false
	}
	return out, true
}
