package rum

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§5), plus micro-benchmarks of the core data structures and
// ablations for the design knobs DESIGN.md calls out. The experiment
// benchmarks run the full simulated pipeline and report the paper's
// headline metrics as custom units; absolute wall time is the cost of
// regenerating the result, not the result itself (the simulation runs on
// virtual time).

import (
	"fmt"
	"testing"
	"time"

	"rum/internal/controller"
	"rum/internal/core"
	"rum/internal/experiments"
	"rum/internal/hsa"
	"rum/internal/metrics"
	"rum/internal/of"
)

// BenchmarkFig1b regenerates Figure 1b: broken-time CDFs for plain
// barriers vs RUM sequential probing during the 300-flow migration.
func BenchmarkFig1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig1b()
		broken := metrics.BrokenTimes(res.Barriers.Updates)
		b.ReportMetric(float64(res.Barriers.TotalLost), "lost_pkts_barriers")
		b.ReportMetric(float64(metrics.Max(broken))/1e6, "max_broken_ms_barriers")
		b.ReportMetric(float64(res.WithRUM.TotalLost), "lost_pkts_rum")
	}
}

// BenchmarkFig1bHighRate reruns the precision check: 10 flows at
// 10 000 pkt/s, still zero drops with probing acks.
func BenchmarkFig1bHighRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig1bHighRate()
		b.ReportMetric(float64(res.Lost), "lost_pkts")
	}
}

// BenchmarkFig2Firewall regenerates Figure 2: http packets bypassing the
// firewall during the "safe" update, with and without RUM.
func BenchmarkFig2Firewall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		broken := experiments.Firewall(experiments.FirewallOpts{WithRUM: false})
		withRUM := experiments.Firewall(experiments.FirewallOpts{WithRUM: true})
		b.ReportMetric(float64(broken.BypassedHTTP), "bypassed_http_broken")
		b.ReportMetric(float64(withRUM.BypassedHTTP), "bypassed_http_rum")
	}
}

// BenchmarkFig6 regenerates Figure 6: flow update times for the
// control-plane-only techniques.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig6()
		for _, r := range res.Results {
			name := r.Technique.String()
			b.ReportMetric(r.MeanUpdate.Seconds()*1000, "mean_update_ms_"+name)
		}
		// The adaptive-250 run is the one the paper shows dropping.
		b.ReportMetric(float64(res.Results[3].TotalLost), "lost_pkts_adaptive250")
		b.ReportMetric(float64(res.Results[1].TotalLost), "lost_pkts_timeout")
	}
}

// BenchmarkFig7 regenerates Figure 7: flow update times with probing.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7()
		for _, r := range res.Results {
			b.ReportMetric(r.Duration.Seconds()*1000, "total_ms_"+r.Technique.String())
			if r.TotalLost != 0 && r.Technique != core.TechNoWait {
				b.Fatalf("%s lost %d packets", r.Technique, r.TotalLost)
			}
		}
	}
}

// BenchmarkFig8 regenerates Figure 8: per-rule delay between data-plane
// and control-plane activation, R=300, K=300.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := experiments.Fig8(experiments.Fig8Opts{})
		for _, r := range results {
			med := metrics.Percentile(r.Deltas, 50)
			b.ReportMetric(med.Seconds()*1000, "median_ms_"+r.Technique.String())
		}
	}
}

// BenchmarkTable1 regenerates Table 1: usable modification rate of
// sequential probing across probing frequency × window K. The full
// R=4000 sweep is expensive; the benchmark uses R=1000 by default and
// the cmd/rumbench tool runs the paper-scale version.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := experiments.Table1(experiments.Table1Opts{R: 1000})
		for _, c := range cells {
			b.ReportMetric(c.Normalized*100,
				fmt.Sprintf("pct_pe%d_k%d", c.ProbeEvery, c.K))
		}
	}
}

// BenchmarkBarrierLayer regenerates the §5.1 barrier-layer overhead
// comparison.
func BenchmarkBarrierLayer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := experiments.BarrierLayer(experiments.BarrierLayerOpts{NumFlows: 100})
		b.ReportMetric(results[0].Ratio, "x_nonreorder")
		b.ReportMetric(results[1].Ratio, "x_reorder_buffered")
		b.ReportMetric(results[2].Ratio, "x_barrier_per_cmd")
	}
}

// BenchmarkPacketRates regenerates the §5.2 message-rate measurements.
func BenchmarkPacketRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Rates()
		b.ReportMetric(r.PacketOutPerSec, "pktout_per_s")
		b.ReportMetric(r.PacketInPerSec, "pktin_per_s")
		b.ReportMetric(r.PacketInModRatio*100, "mod_rate_pct_with_pktin")
		b.ReportMetric(r.PacketOutModRatio*100, "mod_rate_pct_with_pktout")
	}
}

// --- Ablations (design knobs from DESIGN.md §4) ---

// BenchmarkAblationProbeBatch sweeps the sequential probing batch size
// beyond the paper's grid, showing the delay/rate trade-off of §3.2.1.
func BenchmarkAblationProbeBatch(b *testing.B) {
	for _, pe := range []int{1, 5, 10, 50} {
		b.Run(fmt.Sprintf("probeEvery=%d", pe), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := experiments.RunMigration(experiments.MigrationOpts{
					Technique: core.TechSequential,
					RUM:       core.Config{ProbeEvery: pe},
					NumFlows:  100,
				})
				if res.TotalLost != 0 {
					b.Fatalf("lost %d packets", res.TotalLost)
				}
				b.ReportMetric(res.Duration.Seconds()*1000, "update_ms")
			}
		})
	}
}

// BenchmarkAblationGeneralWindow sweeps general probing's per-tick batch
// (the paper probes the 30 oldest every 10 ms).
func BenchmarkAblationGeneralWindow(b *testing.B) {
	for _, batch := range []int{5, 30, 100} {
		b.Run(fmt.Sprintf("probeBatch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := experiments.RunMigration(experiments.MigrationOpts{
					Technique: core.TechGeneral,
					RUM:       core.Config{ProbeBatch: batch},
					NumFlows:  100,
				})
				if res.TotalLost != 0 {
					b.Fatalf("lost %d packets", res.TotalLost)
				}
				b.ReportMetric(res.Duration.Seconds()*1000, "update_ms")
			}
		})
	}
}

// --- Micro-benchmarks of the substrate hot paths ---

func BenchmarkMatchMarshal(b *testing.B) {
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = 0x0800
	buf := make([]byte, of.MatchLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MarshalTo(buf)
	}
}

func BenchmarkFlowModRoundTrip(b *testing.B) {
	fm := &of.FlowMod{Command: of.FCAdd, Priority: 100, Match: of.MatchAll(),
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionSetNWTOS{TOS: 4}, of.ActionOutput{Port: 2}}}
	fm.SetXID(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := of.Marshal(fm)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := of.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProbeSynthesis(b *testing.B) {
	// A realistic table: 300 exact rules plus a drop-all.
	var table []hsa.Rule
	for i := 0; i < 300; i++ {
		f := controller.FlowSpec{ID: i}
		f.Src, f.Dst = controller.FlowAddr(i)
		table = append(table, hsa.Rule{
			Priority: 100,
			Match:    controller.FlowMatch(f),
			Actions:  []of.Action{of.ActionOutput{Port: 2}},
		})
	}
	table = append(table, hsa.Rule{Priority: 1, Match: of.MatchAll()})
	f := controller.FlowSpec{ID: 9999}
	f.Src, f.Dst = controller.FlowAddr(9999)
	probed := hsa.Rule{Priority: 100, Match: controller.FlowMatch(f),
		Actions: []of.Action{of.ActionOutput{Port: 2}}}
	pin := of.MatchAll()
	pin.Wildcards &^= of.WcNWTOS
	pin.NWTOS = 0x0c
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hsa.FindProbe(probed, table, pin); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColoring(b *testing.B) {
	// A 100-switch fat-tree-ish adjacency.
	adj := make(map[uint64][]uint64)
	for i := uint64(0); i < 100; i++ {
		adj[i] = append(adj[i], (i+1)%100, (i+7)%100)
	}
	for i := 0; i < b.N; i++ {
		colors := hsa.ColorGraph(adj)
		if len(colors) != 100 {
			b.Fatal("bad coloring")
		}
	}
}

// BenchmarkSimThroughput measures raw event-engine throughput.
func BenchmarkSimThroughput(b *testing.B) {
	s := NewSimClock()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.After(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	s.After(time.Microsecond, tick)
	s.Run()
}
