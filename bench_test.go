package rum

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§5), plus micro-benchmarks of the core data structures and
// ablations for the design knobs DESIGN.md calls out. The experiment
// benchmarks run the full simulated pipeline and report the paper's
// headline metrics as custom units; absolute wall time is the cost of
// regenerating the result, not the result itself (the simulation runs on
// virtual time).

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rum/internal/cluster"
	"rum/internal/controller"
	"rum/internal/core"
	"rum/internal/experiments"
	"rum/internal/flowtable"
	"rum/internal/hsa"
	"rum/internal/metrics"
	"rum/internal/netsim"
	"rum/internal/of"
	"rum/internal/sim"
	"rum/internal/transport"
)

// --- Machine-readable results (the CI regression gate's input) ---

// benchOut collects the scale benchmarks' metrics; TestMain writes them
// to BENCH_results.json (override with BENCH_OUT) after the run, and
// cmd/benchcheck compares that file against the checked-in
// BENCH_baseline.json.
var benchOut = struct {
	mu sync.Mutex
	m  map[string]map[string]float64
}{m: make(map[string]map[string]float64)}

func benchRecord(name string, metrics map[string]float64) {
	benchOut.mu.Lock()
	defer benchOut.mu.Unlock()
	cur := benchOut.m[name]
	if cur == nil {
		cur = make(map[string]float64)
		benchOut.m[name] = cur
	}
	for k, v := range metrics {
		cur[k] = v
	}
}

func TestMain(m *testing.M) {
	code := m.Run()
	benchOut.mu.Lock()
	defer benchOut.mu.Unlock()
	if len(benchOut.m) > 0 {
		path := os.Getenv("BENCH_OUT")
		if path == "" {
			path = "BENCH_results.json"
		}
		buf, err := json.MarshalIndent(map[string]any{"benchmarks": benchOut.m}, "", "  ")
		if err == nil {
			buf = append(buf, '\n')
			err = os.WriteFile(path, buf, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: writing %s: %v\n", path, err)
			if code == 0 {
				code = 1
			}
		} else {
			fmt.Fprintf(os.Stderr, "bench: wrote %s\n", path)
		}
	}
	os.Exit(code)
}

// BenchmarkFig1b regenerates Figure 1b: broken-time CDFs for plain
// barriers vs RUM sequential probing during the 300-flow migration.
func BenchmarkFig1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig1b()
		broken := metrics.BrokenTimes(res.Barriers.Updates)
		b.ReportMetric(float64(res.Barriers.TotalLost), "lost_pkts_barriers")
		b.ReportMetric(float64(metrics.Max(broken))/1e6, "max_broken_ms_barriers")
		b.ReportMetric(float64(res.WithRUM.TotalLost), "lost_pkts_rum")
	}
}

// BenchmarkFig1bHighRate reruns the precision check: 10 flows at
// 10 000 pkt/s, still zero drops with probing acks.
func BenchmarkFig1bHighRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig1bHighRate()
		b.ReportMetric(float64(res.Lost), "lost_pkts")
	}
}

// BenchmarkFig2Firewall regenerates Figure 2: http packets bypassing the
// firewall during the "safe" update, with and without RUM.
func BenchmarkFig2Firewall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		broken := experiments.Firewall(experiments.FirewallOpts{WithRUM: false})
		withRUM := experiments.Firewall(experiments.FirewallOpts{WithRUM: true})
		b.ReportMetric(float64(broken.BypassedHTTP), "bypassed_http_broken")
		b.ReportMetric(float64(withRUM.BypassedHTTP), "bypassed_http_rum")
	}
}

// BenchmarkFig6 regenerates Figure 6: flow update times for the
// control-plane-only techniques.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig6()
		for _, r := range res.Results {
			name := r.Technique.String()
			b.ReportMetric(r.MeanUpdate.Seconds()*1000, "mean_update_ms_"+name)
		}
		// The adaptive-250 run is the one the paper shows dropping.
		b.ReportMetric(float64(res.Results[3].TotalLost), "lost_pkts_adaptive250")
		b.ReportMetric(float64(res.Results[1].TotalLost), "lost_pkts_timeout")
	}
}

// BenchmarkFig7 regenerates Figure 7: flow update times with probing.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7()
		for _, r := range res.Results {
			b.ReportMetric(r.Duration.Seconds()*1000, "total_ms_"+r.Technique.String())
			if r.TotalLost != 0 && r.Technique != core.TechNoWait {
				b.Fatalf("%s lost %d packets", r.Technique, r.TotalLost)
			}
		}
	}
}

// BenchmarkFig8 regenerates Figure 8: per-rule delay between data-plane
// and control-plane activation, R=300, K=300.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := experiments.Fig8(experiments.Fig8Opts{})
		for _, r := range results {
			med := metrics.Percentile(r.Deltas, 50)
			b.ReportMetric(med.Seconds()*1000, "median_ms_"+r.Technique.String())
		}
	}
}

// BenchmarkTable1 regenerates Table 1: usable modification rate of
// sequential probing across probing frequency × window K. The full
// R=4000 sweep is expensive; the benchmark uses R=1000 by default and
// the cmd/rumbench tool runs the paper-scale version.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := experiments.Table1(experiments.Table1Opts{R: 1000})
		for _, c := range cells {
			b.ReportMetric(c.Normalized*100,
				fmt.Sprintf("pct_pe%d_k%d", c.ProbeEvery, c.K))
		}
	}
}

// BenchmarkBarrierLayer regenerates the §5.1 barrier-layer overhead
// comparison.
func BenchmarkBarrierLayer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := experiments.BarrierLayer(experiments.BarrierLayerOpts{NumFlows: 100})
		b.ReportMetric(results[0].Ratio, "x_nonreorder")
		b.ReportMetric(results[1].Ratio, "x_reorder_buffered")
		b.ReportMetric(results[2].Ratio, "x_barrier_per_cmd")
	}
}

// BenchmarkPacketRates regenerates the §5.2 message-rate measurements.
func BenchmarkPacketRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Rates()
		b.ReportMetric(r.PacketOutPerSec, "pktout_per_s")
		b.ReportMetric(r.PacketInPerSec, "pktin_per_s")
		b.ReportMetric(r.PacketInModRatio*100, "mod_rate_pct_with_pktin")
		b.ReportMetric(r.PacketOutModRatio*100, "mod_rate_pct_with_pktout")
	}
}

// --- Ablations (design knobs from DESIGN.md §4) ---

// BenchmarkAblationProbeBatch sweeps the sequential probing batch size
// beyond the paper's grid, showing the delay/rate trade-off of §3.2.1.
func BenchmarkAblationProbeBatch(b *testing.B) {
	for _, pe := range []int{1, 5, 10, 50} {
		b.Run(fmt.Sprintf("probeEvery=%d", pe), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := experiments.RunMigration(experiments.MigrationOpts{
					Technique: core.TechSequential,
					RUM:       core.Config{ProbeEvery: pe},
					NumFlows:  100,
				})
				if res.TotalLost != 0 {
					b.Fatalf("lost %d packets", res.TotalLost)
				}
				b.ReportMetric(res.Duration.Seconds()*1000, "update_ms")
			}
		})
	}
}

// BenchmarkAblationGeneralWindow sweeps general probing's per-tick batch
// (the paper probes the 30 oldest every 10 ms).
func BenchmarkAblationGeneralWindow(b *testing.B) {
	for _, batch := range []int{5, 30, 100} {
		b.Run(fmt.Sprintf("probeBatch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := experiments.RunMigration(experiments.MigrationOpts{
					Technique: core.TechGeneral,
					RUM:       core.Config{ProbeBatch: batch},
					NumFlows:  100,
				})
				if res.TotalLost != 0 {
					b.Fatalf("lost %d packets", res.TotalLost)
				}
				b.ReportMetric(res.Duration.Seconds()*1000, "update_ms")
			}
		})
	}
}

// --- Micro-benchmarks of the substrate hot paths ---

func BenchmarkMatchMarshal(b *testing.B) {
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = 0x0800
	buf := make([]byte, of.MatchLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MarshalTo(buf)
	}
}

func BenchmarkFlowModRoundTrip(b *testing.B) {
	fm := &of.FlowMod{Command: of.FCAdd, Priority: 100, Match: of.MatchAll(),
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionSetNWTOS{TOS: 4}, of.ActionOutput{Port: 2}}}
	fm.SetXID(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := of.Marshal(fm)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := of.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProbeSynthesis(b *testing.B) {
	// A realistic table: 300 exact rules plus a drop-all.
	var table []hsa.Rule
	for i := 0; i < 300; i++ {
		f := controller.FlowSpec{ID: i}
		f.Src, f.Dst = controller.FlowAddr(i)
		table = append(table, hsa.Rule{
			Priority: 100,
			Match:    controller.FlowMatch(f),
			Actions:  []of.Action{of.ActionOutput{Port: 2}},
		})
	}
	table = append(table, hsa.Rule{Priority: 1, Match: of.MatchAll()})
	f := controller.FlowSpec{ID: 9999}
	f.Src, f.Dst = controller.FlowAddr(9999)
	probed := hsa.Rule{Priority: 100, Match: controller.FlowMatch(f),
		Actions: []of.Action{of.ActionOutput{Port: 2}}}
	pin := of.MatchAll()
	pin.Wildcards &^= of.WcNWTOS
	pin.NWTOS = 0x0c
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hsa.FindProbe(probed, table, pin); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColoring(b *testing.B) {
	// A 100-switch fat-tree-ish adjacency.
	adj := make(map[uint64][]uint64)
	for i := uint64(0); i < 100; i++ {
		adj[i] = append(adj[i], (i+1)%100, (i+7)%100)
	}
	for i := 0; i < b.N; i++ {
		colors := hsa.ColorGraph(adj)
		if len(colors) != 100 {
			b.Fatal("bad coloring")
		}
	}
}

// --- Scale benchmarks (sharded hot path + fat-tree workload) ---
//
// These are the benchmarks the CI bench job gates on: they record their
// headline metrics via benchRecord, and cmd/benchcheck fails the build
// when a metric regresses more than the tolerance against
// BENCH_baseline.json (see README "Scale benchmarks").

// churnBenchResult is one churn run's outcome.
type churnBenchResult struct {
	updatesPerSec float64
	p99           time.Duration
}

// runWallChurn drives a RUM deployment of instant echo switches under
// concurrent per-switch FlowMod churn on a wall clock: one driver
// goroutine per switch, every update awaited through its ack future.
// This is the shard-contention micro-benchmark substrate — no netsim, no
// simulated delays, nothing but the RUM hot path and the scheduler.
func runWallChurn(b *testing.B, nSwitches, updatesPerSwitch int, unsharded bool) churnBenchResult {
	b.Helper()
	clk := NewWallClock()
	r, err := New(Config{
		Clock:     clk,
		Technique: TechBarriers,
		Unsharded: unsharded,
	}, NewTopology(nil))
	if err != nil {
		b.Fatal(err)
	}
	conns := make([]transport.Conn, nSwitches)
	for i := 0; i < nSwitches; i++ {
		name := fmt.Sprintf("sw%02d", i)
		ctrlTop, ctrlBottom := transport.Pipe(clk, 0)
		rumSide, swSide := transport.Pipe(clk, 0)
		swSide.SetHandler(func(m Message) {
			if br, ok := m.(*BarrierRequest); ok {
				rep := of.AcquireBarrierReply()
				rep.SetXID(br.GetXID())
				_ = swSide.Send(rep)
				// The served request is dead (RUM tracks barriers by xid);
				// recycle it like a real switch would.
				of.Release(br)
			}
		})
		ctrlTop.SetHandler(func(Message) {})
		if _, err := r.AttachSwitch(name, uint64(i+1), ctrlBottom, rumSide); err != nil {
			b.Fatal(err)
		}
		conns[i] = ctrlTop
	}

	// Closed-loop churn: every switch's driver keeps a bounded window of
	// updates in flight (like a batching controller with a send window),
	// awaiting the oldest ack before issuing more. Sends are pipelined in
	// small wire batches — exactly what a controller's TCP stream does —
	// identically for both modes, so the measured difference is the RUM
	// hot path, not driver overhead.
	const (
		window    = 256
		sendBatch = 16
	)
	latencies := make([]time.Duration, 0, nSwitches*updatesPerSwitch)
	var latMu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < nSwitches; i++ {
		wg.Add(1)
		go func(swIdx int) {
			defer wg.Done()
			sw := fmt.Sprintf("sw%02d", swIdx)
			conn := conns[swIdx]
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			local := make([]time.Duration, 0, updatesPerSwitch)
			inflight := make([]*UpdateHandle, 0, window)
			pending := make([]Message, 0, sendBatch)
			bs := conn.(transport.BatchSender)
			await := func(h *UpdateHandle) bool {
				res, err := h.AwaitAck(ctx)
				if err != nil {
					b.Errorf("%s xid %d: %v", sw, h.XID(), err)
					return false
				}
				if res.Outcome != OutcomeInstalled {
					b.Errorf("%s xid %d: outcome %v", sw, h.XID(), res.Outcome)
					return false
				}
				local = append(local, res.Latency)
				return true
			}
			for u := 0; u < updatesPerSwitch; u++ {
				xid := uint32(swIdx*100000 + u + 1)
				fm := &FlowMod{Command: of.FCAdd, Priority: 100, Match: of.MatchAll(),
					BufferID: of.BufferNone, OutPort: of.PortNone,
					Actions: []of.Action{of.ActionOutput{Port: 1}}}
				fm.SetXID(xid)
				inflight = append(inflight, r.Watch(sw, xid))
				pending = append(pending, fm)
				if len(pending) >= sendBatch || u == updatesPerSwitch-1 {
					if err := bs.SendBatch(pending); err != nil {
						b.Errorf("%s: send: %v", sw, err)
						return
					}
					// The batch slice is handed to the transport; start fresh.
					pending = make([]Message, 0, sendBatch)
				}
				if len(inflight) >= window {
					if !await(inflight[0]) {
						return
					}
					inflight = inflight[1:]
				}
			}
			for _, h := range inflight {
				if !await(h) {
					return
				}
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			latMu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i := 0; i < nSwitches; i++ {
		r.DetachSwitch(fmt.Sprintf("sw%02d", i))
	}
	total := nSwitches * updatesPerSwitch
	if len(latencies) != total {
		b.Fatalf("churn resolved %d/%d updates", len(latencies), total)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	return churnBenchResult{
		updatesPerSec: float64(total) / elapsed.Seconds(),
		p99:           p99,
	}
}

// BenchmarkShardContention is the multi-switch churn micro-benchmark:
// 32 switches × 300 updates driven concurrently, once over the sharded
// hot path and once over the pre-sharding Unsharded baseline (one
// RUM-wide mutex, unbatched sends). The recorded speedup is the
// sharding refactor's acceptance metric (≥2x, enforced by
// cmd/benchcheck).
func BenchmarkShardContention(b *testing.B) {
	const (
		nSwitches        = 32
		updatesPerSwitch = 1000
	)
	run := func(b *testing.B, unsharded bool, prefix string) {
		var res churnBenchResult
		for i := 0; i < b.N; i++ {
			res = runWallChurn(b, nSwitches, updatesPerSwitch, unsharded)
		}
		b.ReportMetric(res.updatesPerSec, "updates/s")
		b.ReportMetric(float64(res.p99.Microseconds())/1000, "p99_ack_ms")
		benchRecord("ShardContention", map[string]float64{
			"switches":                  nSwitches,
			"updates":                   nSwitches * updatesPerSwitch,
			prefix + "_updates_per_sec": res.updatesPerSec,
			prefix + "_p99_ack_ms":      float64(res.p99.Microseconds()) / 1000,
		})
	}
	b.Run("unsharded", func(b *testing.B) { run(b, true, "unsharded") })
	b.Run("sharded", func(b *testing.B) { run(b, false, "sharded") })

	benchOut.mu.Lock()
	m := benchOut.m["ShardContention"]
	sharded, unsharded := m["sharded_updates_per_sec"], m["unsharded_updates_per_sec"]
	benchOut.mu.Unlock()
	if unsharded > 0 {
		speedup := sharded / unsharded
		b.ReportMetric(speedup, "x_speedup")
		benchRecord("ShardContention", map[string]float64{"speedup": speedup})
	}
}

// BenchmarkFatTreeChurn runs the datacenter-scale workload: a k=8
// fat-tree (80 switches) absorbing 2000 concurrent updates with
// per-layer strategy mixing (sequential edge, general aggregation,
// timeout core), reporting proxy throughput and the simulated ack-latency
// tail.
func BenchmarkFatTreeChurn(b *testing.B) {
	var res *experiments.FatTreeChurnResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.FatTreeChurn(experiments.FatTreeChurnOpts{
			K:                8,
			UpdatesPerSwitch: 25,
			Mixed:            true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != res.Updates {
			b.Fatalf("churn completed %d/%d updates (failed=%d unacked=%d)",
				res.Completed, res.Updates, res.Failed, res.Unacked)
		}
	}
	b.ReportMetric(res.UpdatesPerSec, "updates/s")
	b.ReportMetric(float64(res.P99.Microseconds())/1000, "p99_ack_ms")
	metrics := map[string]float64{
		"switches":        float64(res.Switches),
		"updates":         float64(res.Updates),
		"updates_per_sec": res.UpdatesPerSec,
		"p50_ack_ms":      float64(res.P50.Microseconds()) / 1000,
		"p99_ack_ms":      float64(res.P99.Microseconds()) / 1000,
	}
	// Per-cohort tails (informational, not baseline-gated): this is the
	// instrumentation that attributed the historical flat 300 ms p99 to
	// the timeout cohort's fixed full-table hold.
	for tech, st := range res.PerTechnique {
		metrics["p99_ack_ms_"+tech.String()] = float64(st.P99.Microseconds()) / 1000
	}
	benchRecord("FatTreeChurn", metrics)
}

// BenchmarkAggregation runs the compressible k=8 fat-tree workload
// through the HSA-verified incremental aggregation layer: aligned /32
// blocks merging to single covers, then seeded point-delete churn
// splitting them while acknowledgments fan in from physical installs.
// cmd/benchcheck gates the peak compression ratio (≥ the
// -min-aggregation-ratio floor) and demands zero HSA counterexamples and
// zero false acks against the emulated switches' activation logs.
func BenchmarkAggregation(b *testing.B) {
	var res *experiments.AggregationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Aggregation(experiments.AggregationOpts{K: 8, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != res.Updates {
			b.Fatalf("aggregation completed %d/%d updates (failed=%d unacked=%d)",
				res.Completed, res.Updates, res.Failed, res.Unacked)
		}
	}
	b.ReportMetric(res.Ratio, "compression_ratio")
	b.ReportMetric(float64(res.P99.Microseconds())/1000, "p99_ack_ms")
	benchRecord("Aggregation", map[string]float64{
		"switches":            float64(res.Switches),
		"updates":             float64(res.Updates),
		"logical_rules":       float64(res.LogicalRules),
		"physical_rules":      float64(res.PhysicalRules),
		"compression_ratio":   res.Ratio,
		"hsa_counterexamples": float64(res.HSACounterexamples),
		"false_install_acks":  float64(res.FalseInstallAcks),
		"false_remove_acks":   float64(res.FalseRemoveAcks),
		"p50_ack_ms":          float64(res.P50.Microseconds()) / 1000,
		"p99_ack_ms":          float64(res.P99.Microseconds()) / 1000,
	})
}

// BenchmarkFatTreeChurnFaultWrapped runs the same k=8 churn with the
// fault-injection wrapper interposed on every switch conn but no faults
// triggered (faults.Passthrough): the cost of having the chaos layer in
// the stack while it is disabled. cmd/benchcheck gates the simulated-p99
// ratio against plain FatTreeChurn at ≤1.05 — the wrapper must be free
// when off.
func BenchmarkFatTreeChurnFaultWrapped(b *testing.B) {
	var res *experiments.FaultChurnResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.FaultChurn(experiments.FaultChurnOpts{
			Profile:          experiments.FaultNone,
			K:                8,
			UpdatesPerSwitch: 25,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Acked != res.Updates {
			b.Fatalf("wrapped churn acked %d/%d (failed=%d wedged=%d)",
				res.Acked, res.Updates, res.FailedTyped, res.Wedged)
		}
	}
	b.ReportMetric(float64(res.P99.Microseconds())/1000, "p99_ack_ms")
	benchRecord("FatTreeChurnFaultWrapped", map[string]float64{
		"switches":   float64(res.Switches),
		"updates":    float64(res.Updates),
		"p50_ack_ms": float64(res.P50.Microseconds()) / 1000,
		"p99_ack_ms": float64(res.P99.Microseconds()) / 1000,
	})
}

// BenchmarkOverload drives the fat-tree churn through trace-congested
// control channels against bounded per-switch outboxes (the Shed
// policy) and records the shed rate. The run must stay healthy — zero
// wedged futures, zero false acks, every failure typed ErrOverloaded —
// and cmd/benchcheck gates the shed percentage absolutely
// (-max-overload-shed-pct): admission control may refuse work under
// congestion collapse, but a refusal rate creeping past the ceiling
// means the coalescing/degradation machinery stopped absorbing load.
func BenchmarkOverload(b *testing.B) {
	var res *experiments.OverloadChurnResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.OverloadChurn(experiments.OverloadChurnOpts{Policy: core.OverloadShed})
		if err != nil {
			b.Fatal(err)
		}
		if res.Wedged != 0 || res.FalseAcks != 0 || res.FailedOther != 0 {
			b.Fatalf("overload churn unhealthy: %s", res)
		}
	}
	b.ReportMetric(res.ShedPct, "shed_pct")
	b.ReportMetric(float64(res.P99.Microseconds())/1000, "p99_ack_ms")
	benchRecord("Overload", map[string]float64{
		"updates":    float64(res.Updates),
		"acked":      float64(res.Acked),
		"shed_pct":   res.ShedPct,
		"p99_ack_ms": float64(res.P99.Microseconds()) / 1000,
	})
}

// BenchmarkPlannerFatTree runs the full consistent-update pipeline on
// the k=8 fat-tree: plan compilation, per-wave HSA transient
// verification, and fault-free execution to completion, with the FIB
// ground-truth checks (new paths installed, old rules retired, zero
// double-installs). The recorded verify_ratio — HSA wall time over
// end-to-end plan wall time — is the planner's acceptance metric:
// cmd/benchcheck gates it at ≤ 0.20 (-max-planner-verify-ratio), so
// transient verification must stay a thin slice of the update pipeline,
// never its bottleneck.
func BenchmarkPlannerFatTree(b *testing.B) {
	var res *experiments.PlannedMigrationResult
	var planWall, verifyWall time.Duration
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.PlannedMigration(experiments.PlannedMigrationOpts{K: 8})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed || res.Wedged != 0 || !res.FinalStateOK || res.DoubleInstalls != 0 {
			b.Fatalf("planned migration unhealthy: %s", res)
		}
		if res.VerifiedWaves != res.Waves {
			b.Fatalf("verified %d/%d waves", res.VerifiedWaves, res.Waves)
		}
		planWall += res.PlanWall
		verifyWall += res.VerifyWall
	}
	// Aggregate the ratio over every iteration — single runs are at the
	// mercy of scheduler noise in the few-millisecond walls.
	ratio := float64(verifyWall) / float64(planWall)
	b.ReportMetric(planWall.Seconds()*1000/float64(b.N), "plan_wall_ms")
	b.ReportMetric(verifyWall.Seconds()*1000/float64(b.N), "verify_wall_ms")
	b.ReportMetric(ratio*100, "verify_pct")
	benchRecord("PlannerFatTree", map[string]float64{
		"switches":       float64(res.Switches),
		"segments":       float64(res.Segments),
		"waves":          float64(res.Waves),
		"verified_waves": float64(res.VerifiedWaves),
		"verify_ratio":   ratio,
	})
}

// --- Ack-path benchmarks (O(1) seq-ring bookkeeping, pooled updates) ---

// ackPathBed proxies one switch through RUM over loopback TCP on both
// sides — the production deployment shape, where every conn encodes
// frames and the whole track→flush→reply→confirm→ack pipeline runs on
// pooled structs. The returned round function pushes one batch of
// batchSize actionless FlowMods and blocks until their RUM acks arrive.
func ackPathBed(b *testing.B, batchSize int) (round func(), close func()) {
	b.Helper()
	clk := NewWallClock()
	r, err := New(Config{Clock: clk, Technique: TechBarriers, RUMAware: true}, NewTopology(nil))
	if err != nil {
		b.Fatal(err)
	}
	benchCtrl, rumCtrl := wireLoopbackPair(b, false)
	rumSw, benchSw := wireLoopbackPair(b, false)

	benchSw.SetHandler(func(m Message) {
		switch mm := m.(type) {
		case *of.FlowMod:
			of.Release(mm)
		case *of.BarrierRequest:
			rep := of.AcquireBarrierReply()
			rep.SetXID(mm.GetXID())
			_ = benchSw.Send(rep)
			of.Release(rep) // the conn encoded it during Send
			of.Release(mm)
		}
	})
	acks := make(chan struct{}, 4*batchSize)
	benchCtrl.SetHandler(func(m Message) {
		if e, ok := m.(*of.Error); ok {
			if _, _, isAck := e.IsRUMAck(); isAck {
				of.Release(e)
				acks <- struct{}{}
			}
		}
	})
	if _, err := r.AttachSwitch("s1", 1, rumCtrl, rumSw); err != nil {
		b.Fatal(err)
	}

	batch := make([]Message, 0, batchSize)
	for i := 0; i < batchSize; i++ {
		fm := &FlowMod{Command: of.FCAdd, Priority: 100, Match: of.MatchAll(),
			BufferID: of.BufferNone, OutPort: of.PortNone}
		fm.SetXID(uint32(i + 1))
		batch = append(batch, fm)
	}
	bs := benchCtrl.(transport.BatchSender)
	round = func() {
		if err := bs.SendBatch(batch); err != nil {
			b.Fatalf("ack path send: %v", err)
		}
		for i := 0; i < batchSize; i++ {
			<-acks
		}
	}
	return round, func() {
		r.DetachSwitch("s1")
		benchCtrl.Close()
		benchSw.Close()
	}
}

// BenchmarkAckPath is the acknowledgment hot path's acceptance
// benchmark: end-to-end confirmed updates/sec through a full TCP-proxied
// deployment, and steady-state allocations per confirmed update across
// the entire pipeline — decode, seq-ring tracking, shard flush, barrier
// coalescing, confirmation, and the wire-level ack. cmd/benchcheck gates
// the alloc count at zero and the throughput against BENCH_baseline.json.
func BenchmarkAckPath(b *testing.B) {
	const batchSize = 64
	var perSec, allocs float64
	allocsRan := false
	b.Run("throughput", func(b *testing.B) {
		round, done := ackPathBed(b, batchSize)
		defer done()
		const rounds = 512
		for i := 0; i < b.N; i++ {
			start := time.Now()
			for k := 0; k < rounds; k++ {
				round()
			}
			perSec = float64(rounds*batchSize) / time.Since(start).Seconds()
		}
		b.ReportMetric(perSec, "updates/s")
	})
	b.Run("allocs", func(b *testing.B) {
		round, done := ackPathBed(b, batchSize)
		defer done()
		for i := 0; i < b.N; i++ {
			// Warm every pool (updates, codec structs, ring, outbox
			// backings, write buffers) before measuring.
			for k := 0; k < 32; k++ {
				round()
			}
			allocs = testing.AllocsPerRun(200, round) / float64(batchSize)
			allocsRan = true
		}
		b.ReportMetric(allocs, "allocs/update")
	})
	if perSec == 0 || !allocsRan {
		// A sub-benchmark was filtered out: recording a zero-valued
		// alloc metric that was never measured would silently satisfy
		// the zero-alloc gate.
		return
	}
	benchRecord("AckPath", map[string]float64{
		"updates":                     512 * batchSize,
		"confirmed_per_sec":           perSec,
		"allocs_per_confirmed_update": allocs,
	})
}

// BenchmarkSimThroughput measures raw event-engine throughput.
func BenchmarkSimThroughput(b *testing.B) {
	s := NewSimClock()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.After(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	s.After(time.Microsecond, tick)
	s.Run()
}

// --- Wire-path benchmarks (zero-allocation codec + coalescing writer) ---

// runWireThroughput drives FlowMod batches through a loopback TCP pair in
// the given transport mode, flow-controlled by barrier echoes, and
// returns sustained updates/sec. The server decodes every frame (pooled
// reader + pooled structs) and answers each batch's barrier; both sides
// run the same mode so the measured difference is purely the wire path.
func runWireThroughput(b *testing.B, unbuffered bool) float64 {
	b.Helper()
	client, server := wireLoopbackPair(b, unbuffered)
	defer client.Close()
	defer server.Close()

	canRecycleEcho := transport.EncodesFrames(server)
	server.SetHandler(func(m Message) {
		switch mm := m.(type) {
		case *of.FlowMod:
			of.Release(mm)
		case *of.BarrierRequest:
			rep := of.AcquireBarrierReply()
			rep.SetXID(mm.GetXID())
			_ = server.Send(rep)
			if canRecycleEcho {
				// The coalescing conn encoded the reply during Send, so
				// ownership is back with us; the unbuffered conn still
				// holds it in its queue.
				of.Release(rep)
			}
			of.Release(mm)
		}
	})
	replies := make(chan struct{}, 64)
	client.SetHandler(func(m Message) {
		if rep, ok := m.(*BarrierReply); ok {
			of.Release(rep)
			replies <- struct{}{}
		}
	})

	const (
		batchSize = 64
		batches   = 512
		window    = 8 // barrier round trips in flight
	)
	// One reusable template batch: the coalescing conn serializes frames
	// during SendBatch, so the structs are reusable immediately; the
	// unbuffered conn queues them, but they are never mutated.
	batch := make([]Message, 0, batchSize+1)
	for i := 0; i < batchSize; i++ {
		fm := &FlowMod{Command: of.FCAdd, Priority: 100, Match: of.MatchAll(),
			BufferID: of.BufferNone, OutPort: of.PortNone,
			Actions: []of.Action{of.ActionSetNWTOS{TOS: 4}, of.ActionOutput{Port: 2}}}
		fm.SetXID(uint32(i + 1))
		batch = append(batch, fm)
	}
	bs := client.(transport.BatchSender)
	start := time.Now()
	inflight := 0
	for k := 0; k < batches; k++ {
		if inflight == window {
			<-replies
			inflight--
		}
		br := &BarrierRequest{}
		br.SetXID(uint32(0x1000 + k))
		if err := bs.SendBatch(append(batch, br)); err != nil {
			b.Fatalf("send batch %d: %v", k, err)
		}
		inflight++
	}
	for ; inflight > 0; inflight-- {
		<-replies
	}
	elapsed := time.Since(start)
	return float64(batches*batchSize) / elapsed.Seconds()
}

// wireLoopbackPair builds a connected loopback TCP transport pair.
func wireLoopbackPair(b *testing.B, unbuffered bool) (client, server transport.Conn) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- nc
	}()
	cnc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	snc, ok := <-accepted
	if !ok {
		b.Fatal("accept failed")
	}
	mk := transport.NewTCP
	if unbuffered {
		mk = transport.NewTCPUnbuffered
	}
	return mk(cnc), mk(snc)
}

// measureWireAllocs measures steady-state allocations per frame on the
// encode+send path of the coalescing conn: actionless FlowMods (action
// decode necessarily boxes interface values on the *receiving* side, and
// the receiver shares this process) plus one barrier per round, window 1,
// every decoded struct recycled. The whole pipeline — MarshalAppend into
// the recycled write buffer, one coalesced Write, pooled decode, pooled
// barrier echo — is allocation-free once warm.
func measureWireAllocs(b *testing.B) float64 {
	b.Helper()
	client, server := wireLoopbackPair(b, false)
	defer client.Close()
	defer server.Close()

	canRecycleEcho := transport.EncodesFrames(server)
	server.SetHandler(func(m Message) {
		switch mm := m.(type) {
		case *of.FlowMod:
			of.Release(mm)
		case *of.BarrierRequest:
			rep := of.AcquireBarrierReply()
			rep.SetXID(mm.GetXID())
			_ = server.Send(rep)
			if canRecycleEcho {
				// The coalescing conn encoded the reply during Send, so
				// ownership is back with us; the unbuffered conn still
				// holds it in its queue.
				of.Release(rep)
			}
			of.Release(mm)
		}
	})
	replies := make(chan struct{}, 1)
	client.SetHandler(func(m Message) {
		if rep, ok := m.(*BarrierReply); ok {
			of.Release(rep)
			replies <- struct{}{}
		}
	})

	const batchSize = 64
	batch := make([]Message, 0, batchSize+1)
	for i := 0; i < batchSize; i++ {
		fm := &FlowMod{Command: of.FCAdd, Priority: 100, Match: of.MatchAll(),
			BufferID: of.BufferNone, OutPort: of.PortNone}
		fm.SetXID(uint32(i + 1))
		batch = append(batch, fm)
	}
	br := &BarrierRequest{}
	br.SetXID(0xbead)
	batch = append(batch, br)
	bs := client.(transport.BatchSender)
	round := func() {
		if err := bs.SendBatch(batch); err != nil {
			b.Fatalf("send: %v", err)
		}
		<-replies
	}
	// Warm the pools and the write-buffer free list before measuring.
	for i := 0; i < 32; i++ {
		round()
	}
	perRound := testing.AllocsPerRun(200, round)
	return perRound / float64(batchSize)
}

// BenchmarkWireThroughput is the zero-allocation wire-path acceptance
// benchmark: loopback TCP, updates/sec for the historical unbuffered
// one-Write-per-frame path vs the coalescing writer, plus steady-state
// allocs per encoded+sent frame. cmd/benchcheck gates the coalescing
// speedup (≥1.3x absolute) and the alloc count (0 per op) against
// BENCH_baseline.json.
func BenchmarkWireThroughput(b *testing.B) {
	var unbuf, coal float64
	b.Run("unbuffered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			unbuf = runWireThroughput(b, true)
		}
		b.ReportMetric(unbuf, "updates/s")
	})
	b.Run("coalesced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coal = runWireThroughput(b, false)
		}
		b.ReportMetric(coal, "updates/s")
	})
	allocs := 0.0
	b.Run("allocs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			allocs = measureWireAllocs(b)
		}
		b.ReportMetric(allocs, "allocs/frame")
	})
	if unbuf == 0 || coal == 0 {
		return // sub-benchmark filtered out; nothing to record
	}
	speedup := coal / unbuf
	b.ReportMetric(speedup, "x_speedup")
	benchRecord("WireThroughput", map[string]float64{
		"updates":                    512 * 64,
		"unbuffered_updates_per_sec": unbuf,
		"coalesced_updates_per_sec":  coal,
		"coalesce_speedup":           speedup,
		"encode_send_allocs_per_op":  allocs,
	})
}

// --- Cluster benchmarks (sharded multi-proxy scale-out) ---

// clusterBenchSwitch is one proxied switch of the cluster benchmark: its
// controller-side conn, its RUM-ack channel, and a reusable FlowMod batch.
type clusterBenchSwitch struct {
	name  string
	dpid  uint64
	ctrl  transport.Conn
	acks  chan struct{}
	batch []Message
	conns []transport.Conn
}

func (cs *clusterBenchSwitch) closeConns() {
	for _, c := range cs.conns {
		c.Close()
	}
	cs.conns = nil
}

// benchClusterAttach (re-)wires one switch into the cluster over fresh
// loopback TCP on both sides — the same transport shape as ackPathBed, so
// the aggregate throughput is directly comparable to BenchmarkAckPath.
// Any previous conns are closed first (the re-dial of a handoff).
func benchClusterAttach(b *testing.B, c *cluster.Cluster, cs *clusterBenchSwitch) {
	b.Helper()
	cs.closeConns()
	benchCtrl, rumCtrl := wireLoopbackPair(b, false)
	rumSw, benchSw := wireLoopbackPair(b, false)
	benchSw.SetHandler(func(m Message) {
		switch mm := m.(type) {
		case *of.FlowMod:
			of.Release(mm)
		case *of.BarrierRequest:
			rep := of.AcquireBarrierReply()
			rep.SetXID(mm.GetXID())
			_ = benchSw.Send(rep)
			of.Release(rep)
			of.Release(mm)
		}
	})
	acks := cs.acks
	benchCtrl.SetHandler(func(m Message) {
		if e, ok := m.(*of.Error); ok {
			if _, _, isAck := e.IsRUMAck(); isAck {
				of.Release(e)
				acks <- struct{}{}
			}
		}
	})
	if _, _, err := c.AttachSwitch(cs.name, cs.dpid, rumCtrl, rumSw); err != nil {
		b.Fatalf("attach %s: %v", cs.name, err)
	}
	cs.ctrl = benchCtrl
	cs.conns = []transport.Conn{benchCtrl, benchSw}
}

// BenchmarkCluster is the sharded multi-proxy acceptance benchmark: a
// 4-member cluster serving the full k=16 fat-tree switch census (320
// switches, pod-aligned shard map) over loopback TCP on both sides of
// every proxy. It records
//
//   - aggregate_confirmed_per_sec: network-wide confirmed updates/sec with
//     every switch driving closed-loop batches concurrently. cmd/benchcheck
//     gates this against the single-proxy AckPath number (≥2x on machines
//     with at least as many CPUs as proxies — the scale-out claim);
//   - handoff_recovery_p99_ms: p99 over member 0's orphans of crash →
//     re-dial → adoption by a surviving member → first confirmed update.
//     cmd/benchcheck gates it absolutely (-max-handoff-recovery-ms).
func BenchmarkCluster(b *testing.B) {
	const (
		proxies   = 4
		k         = 16
		batchSize = 64
		rounds    = 8
	)
	raiseFDLimit(b, 8192)
	ft, err := netsim.NewFatTree(k)
	if err != nil {
		b.Fatal(err)
	}
	smap, err := cluster.NewShardMap(proxies)
	if err != nil {
		b.Fatal(err)
	}
	cluster.AssignFatTree(smap, ft)
	clk := NewWallClock()
	c, err := cluster.New(cluster.Config{
		Map:      smap,
		Core:     Config{Clock: clk, Technique: TechBarriers, RUMAware: true},
		Topology: NewTopology(nil),
	})
	if err != nil {
		b.Fatal(err)
	}
	names := ft.Switches()
	beds := make(map[string]*clusterBenchSwitch, len(names))
	for i, name := range names {
		cs := &clusterBenchSwitch{
			name: name,
			dpid: uint64(i + 1),
			acks: make(chan struct{}, 4*batchSize),
		}
		for j := 0; j < batchSize; j++ {
			fm := &FlowMod{Command: of.FCAdd, Priority: 100, Match: of.MatchAll(),
				BufferID: of.BufferNone, OutPort: of.PortNone}
			fm.SetXID(uint32(j + 1))
			cs.batch = append(cs.batch, fm)
		}
		benchClusterAttach(b, c, cs)
		beds[name] = cs
	}
	defer func() {
		for _, cs := range beds {
			cs.closeConns()
		}
	}()
	shard0 := c.SwitchesOf(0)
	if len(shard0) == 0 {
		b.Fatal("member 0 owns no switches")
	}

	totalUpdates := len(names) * batchSize * rounds
	var aggregate float64
	b.Run("aggregate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			start := time.Now()
			for _, name := range names {
				cs := beds[name]
				wg.Add(1)
				go func() {
					defer wg.Done()
					bs := cs.ctrl.(transport.BatchSender)
					for r := 0; r < rounds; r++ {
						if err := bs.SendBatch(cs.batch); err != nil {
							b.Errorf("%s: send: %v", cs.name, err)
							return
						}
						for n := 0; n < batchSize; n++ {
							<-cs.acks
						}
					}
				}()
			}
			wg.Wait()
			aggregate = float64(totalUpdates) / time.Since(start).Seconds()
		}
		b.ReportMetric(aggregate, "updates/s")
	})

	var p99ms float64
	handoffRan := false
	b.Run("handoff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Self-contained iteration: member 0 is revived and its shard
			// moved home on fresh conns before the measured kill, so the
			// benchmark is stable under b.N > 1.
			c.Revive(0)
			for _, name := range shard0 {
				c.DetachSwitch(name, cluster.ErrProxyLost)
				benchClusterAttach(b, c, beds[name])
			}
			var warm sync.WaitGroup
			for _, name := range shard0 {
				cs := beds[name]
				warm.Add(1)
				go func() {
					defer warm.Done()
					if err := cs.ctrl.(transport.BatchSender).SendBatch(cs.batch); err != nil {
						b.Errorf("%s: warm send: %v", cs.name, err)
						return
					}
					for n := 0; n < batchSize; n++ {
						<-cs.acks
					}
				}()
			}
			warm.Wait()

			start := time.Now()
			orphans := c.Kill(0)
			if len(orphans) != len(shard0) {
				b.Fatalf("kill orphaned %d switches, want %d", len(orphans), len(shard0))
			}
			lat := make([]time.Duration, len(orphans))
			var wg sync.WaitGroup
			for oi, name := range orphans {
				cs := beds[name]
				wg.Add(1)
				go func() {
					defer wg.Done()
					benchClusterAttach(b, c, cs)
					fm := &FlowMod{Command: of.FCAdd, Priority: 100, Match: of.MatchAll(),
						BufferID: of.BufferNone, OutPort: of.PortNone}
					fm.SetXID(uint32(0x7f000000 + oi))
					if err := cs.ctrl.Send(fm); err != nil {
						b.Errorf("%s: post-handoff send: %v", cs.name, err)
						return
					}
					select {
					case <-cs.acks:
						lat[oi] = time.Since(start)
					case <-time.After(30 * time.Second):
						b.Errorf("%s: no confirmed update within 30s of the crash", cs.name)
					}
				}()
			}
			wg.Wait()
			if b.Failed() {
				return
			}
			sort.Slice(lat, func(x, y int) bool { return lat[x] < lat[y] })
			p99 := lat[len(lat)*99/100]
			p99ms = float64(p99.Microseconds()) / 1000
			handoffRan = true
		}
		b.ReportMetric(p99ms, "recovery_p99_ms")
	})

	if aggregate == 0 || !handoffRan {
		// A sub-benchmark was filtered out; recording a partial result
		// would let an unmeasured metric satisfy its gate.
		return
	}
	benchRecord("Cluster", map[string]float64{
		"proxies":                     proxies,
		"switches":                    float64(len(names)),
		"updates":                     float64(totalUpdates),
		"cpus":                        float64(runtime.NumCPU()),
		"aggregate_confirmed_per_sec": aggregate,
		"handoff_recovery_p99_ms":     p99ms,
	})
}

// rescueBenchSwitch is one proxied switch of the rescue benchmark: unlike
// clusterBenchSwitch it records every applied FlowMod in a real flow
// table (the FIB the rescue sweep re-reads) and can be muted — applying
// rules but withholding barrier replies — so a kill can land with every
// future verifiably in flight.
type rescueBenchSwitch struct {
	name    string
	dpid    uint64
	ctrl    transport.Conn
	conns   []transport.Conn
	mu      sync.Mutex
	fib     *flowtable.Table
	arrived atomic.Int64
	// mute withholds barrier replies and drops odd-priority FlowMods
	// before they reach the FIB: the dropped half exercises the rescue's
	// re-issue path, the applied half its confirm-from-FIB path.
	mute atomic.Bool
}

func (rs *rescueBenchSwitch) readFIB() []hsa.Rule {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.fib.Rules()
}

func (rs *rescueBenchSwitch) closeConns() {
	for _, c := range rs.conns {
		c.Close()
	}
	rs.conns = nil
}

// benchClusterAttachRescue (re-)wires one rescue-bench switch into the
// cluster over fresh loopback TCP, mirroring benchClusterAttach but with
// the FIB-recording, mutable switch stub.
func benchClusterAttachRescue(b *testing.B, c *cluster.Cluster, rs *rescueBenchSwitch) {
	b.Helper()
	rs.closeConns()
	benchCtrl, rumCtrl := wireLoopbackPair(b, false)
	rumSw, benchSw := wireLoopbackPair(b, false)
	benchSw.SetHandler(func(m Message) {
		switch mm := m.(type) {
		case *of.FlowMod:
			rs.arrived.Add(1)
			if !rs.mute.Load() || mm.Priority%2 == 0 {
				rs.mu.Lock()
				rs.fib.Apply(mm)
				rs.mu.Unlock()
			}
			// The table may retain the mod's match/actions; let the GC
			// reclaim it instead of recycling it into the pool.
		case *of.BarrierRequest:
			if !rs.mute.Load() {
				rep := of.AcquireBarrierReply()
				rep.SetXID(mm.GetXID())
				_ = benchSw.Send(rep)
				of.Release(rep)
			}
			of.Release(mm)
		}
	})
	benchCtrl.SetHandler(func(m Message) {}) // resolutions observed via handles
	if _, _, err := c.AttachSwitch(rs.name, rs.dpid, rumCtrl, rumSw); err != nil {
		b.Fatalf("attach %s: %v", rs.name, err)
	}
	rs.ctrl = benchCtrl
	rs.conns = []transport.Conn{benchCtrl, benchSw}
}

// BenchmarkClusterRescue measures the crash-rescue path end to end: a
// 4-member rescue-enabled cluster serves member 0's pod of the k=16
// fat-tree over loopback TCP, every switch accumulates a batch of
// verifiably in-flight futures (rules applied, barrier replies withheld,
// half the rules dropped before the FIB), and member 0 is killed. Each
// orphan is re-attached to a survivor and adopted; the sweep confirms
// the applied half from the re-read FIB and re-issues the dropped half
// through the adoptive member. It records
//
//   - rescue_completion_p99_ms: p99 over every in-flight future of crash
//     → adoption → truthful resolution, gated by cmd/benchcheck against
//     the same 250 ms bound as the handoff benchmark;
//   - rescue_failed_pct: journaled futures failed despite a reachable
//     switch, as a percentage of all rescued futures — gated at zero.
func BenchmarkClusterRescue(b *testing.B) {
	const (
		proxies   = 4
		k         = 16
		batchSize = 32
	)
	raiseFDLimit(b, 8192)
	ft, err := netsim.NewFatTree(k)
	if err != nil {
		b.Fatal(err)
	}
	smap, err := cluster.NewShardMap(proxies)
	if err != nil {
		b.Fatal(err)
	}
	cluster.AssignFatTree(smap, ft)
	beds := make(map[string]*rescueBenchSwitch)
	clk := NewWallClock()
	c, err := cluster.New(cluster.Config{
		Map:      smap,
		Core:     Config{Clock: clk, Technique: TechBarriers, RUMAware: true},
		Topology: NewTopology(nil),
		ReadFIB: func(sw string) []hsa.Rule {
			if rs := beds[sw]; rs != nil {
				return rs.readFIB()
			}
			return nil
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	// Only member 0's switches are attached: the benchmark isolates the
	// kill/rescue path, and the survivors' members exist to adopt.
	var shard0 []string
	for i, name := range ft.Switches() {
		if o := smap.Rank(name)[0]; o != 0 {
			continue
		}
		rs := &rescueBenchSwitch{name: name, dpid: uint64(i + 1), fib: flowtable.New()}
		beds[name] = rs
		shard0 = append(shard0, name)
	}
	if len(shard0) == 0 {
		b.Fatal("member 0 owns no switches")
	}
	for _, name := range shard0 {
		benchClusterAttachRescue(b, c, beds[name])
	}
	defer func() {
		for _, rs := range beds {
			rs.closeConns()
		}
	}()

	futures := len(shard0) * batchSize
	var p99ms, failedPct float64
	var rescued, reissued int
	statsBase := c.RescueStats()
	for i := 0; i < b.N; i++ {
		// Self-contained iteration: member 0 revived and its shard moved
		// home on fresh muted conns with empty FIBs.
		c.Revive(0)
		for _, name := range shard0 {
			rs := beds[name]
			c.DetachSwitch(name, cluster.ErrProxyLost)
			rs.mu.Lock()
			rs.fib = flowtable.New()
			rs.mu.Unlock()
			rs.arrived.Store(0)
			rs.mute.Store(true)
			benchClusterAttachRescue(b, c, rs)
		}
		// One batch of in-flight futures per switch: distinct priorities
		// make each rule its own FIB row (and mark the odd half for the
		// drop), the withheld barriers keep every future pending.
		handles := make(map[string][]*core.UpdateHandle, len(shard0))
		for _, name := range shard0 {
			rs := beds[name]
			batch := make([]Message, batchSize)
			hs := make([]*core.UpdateHandle, batchSize)
			for j := 0; j < batchSize; j++ {
				fm := &FlowMod{Command: of.FCAdd, Priority: uint16(j + 1), Match: of.MatchAll(),
					BufferID: of.BufferNone, OutPort: of.PortNone}
				fm.SetXID(uint32(0x10000 + j))
				hs[j] = c.Watch(name, fm.GetXID())
				batch[j] = fm
			}
			handles[name] = hs
			if err := rs.ctrl.(transport.BatchSender).SendBatch(batch); err != nil {
				b.Fatalf("%s: send: %v", name, err)
			}
		}
		// Every FlowMod at its switch ⇒ tracked and journaled (the
		// journal frame ships write-ahead of the batch).
		for _, name := range shard0 {
			for beds[name].arrived.Load() < batchSize {
				time.Sleep(100 * time.Microsecond)
			}
		}

		start := time.Now()
		orphans := c.Kill(0)
		if len(orphans) != len(shard0) {
			b.Fatalf("kill orphaned %d switches, want %d", len(orphans), len(shard0))
		}
		lat := make([]time.Duration, futures)
		var failed atomic.Int64
		var wg sync.WaitGroup
		for oi, name := range orphans {
			rs := beds[name]
			hs := handles[name]
			base := oi * batchSize
			wg.Add(1)
			go func() {
				defer wg.Done()
				rs.mute.Store(false)
				benchClusterAttachRescue(b, c, rs)
				if err := c.BootstrapSwitch(rs.name); err != nil {
					b.Errorf("%s: bootstrap: %v", rs.name, err)
					return
				}
				for j, h := range hs {
					select {
					case <-h.Done():
						lat[base+j] = time.Since(start)
					case <-time.After(30 * time.Second):
						b.Errorf("%s: future %d unresolved 30s after the crash", rs.name, j)
						return
					}
					if ar, _ := h.Result(); ar.Outcome == core.OutcomeFailed {
						failed.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		if b.Failed() {
			return
		}
		sort.Slice(lat, func(x, y int) bool { return lat[x] < lat[y] })
		p99ms = float64(lat[len(lat)*99/100].Microseconds()) / 1000
		failedPct = 100 * float64(failed.Load()) / float64(futures)
		st := c.RescueStats()
		rescued = st.Rescued - statsBase.Rescued
		reissued = st.Reissued - statsBase.Reissued
		statsBase = st
	}
	b.ReportMetric(p99ms, "rescue_p99_ms")
	b.ReportMetric(failedPct, "failed_pct")
	benchRecord("ClusterRescue", map[string]float64{
		"switches":                 float64(len(shard0)),
		"futures":                  float64(futures),
		"rescued":                  float64(rescued),
		"reissued":                 float64(reissued),
		"rescue_completion_p99_ms": p99ms,
		"rescue_failed_pct":        failedPct,
	})
}

// BenchmarkTimerWheel loads the wall-clock deadline wheel with well over
// 100k concurrent pending deadlines — the timeout/adaptive strategies'
// worst case under datacenter churn — and measures schedule throughput
// and full drain.
func BenchmarkTimerWheel(b *testing.B) {
	const timers = 120000
	var schedPerSec float64
	var maxPending int
	for i := 0; i < b.N; i++ {
		w := sim.NewWheel(time.Millisecond)
		var fired atomic.Int64
		done := make(chan struct{})
		start := time.Now()
		for j := 0; j < timers; j++ {
			// All deadlines far enough out that every timer is pending at
			// once, spread across two wheel levels.
			d := 150*time.Millisecond + time.Duration(j%350)*time.Millisecond
			w.Schedule(d, func() {
				if fired.Add(1) == timers {
					close(done)
				}
			})
		}
		schedPerSec = float64(timers) / time.Since(start).Seconds()
		maxPending = w.Pending()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			b.Fatalf("wheel drained %d/%d timers", fired.Load(), timers)
		}
	}
	if maxPending < 100000 {
		b.Fatalf("only %d deadlines concurrently pending, want >= 100000", maxPending)
	}
	b.ReportMetric(schedPerSec, "schedule/s")
	b.ReportMetric(float64(maxPending), "max_pending")
	benchRecord("TimerWheel", map[string]float64{
		"timers":           timers,
		"max_pending":      float64(maxPending),
		"schedule_per_sec": schedPerSec,
	})
}
