// Package rum is the public API of RUM (Rule Update Monitoring), a
// reproduction of "Providing Reliable FIB Update Acknowledgments in SDN"
// (Kuźniar, Perešíni, Kostić — CoNEXT 2014).
//
// RUM is a transparent layer between an SDN controller and its OpenFlow
// 1.0 switches. It intercepts the control channel and guarantees that the
// controller never receives an acknowledgment for a rule modification
// before the rule is actually visible in the switch's data plane. On
// switches with broken barrier implementations — which answer early, or
// reorder rule installations across barriers — this is the difference
// between consistent updates that hold in practice and transient black
// holes, loops, or security-policy violations.
//
// # Techniques
//
// RUM offers the paper's five acknowledgment techniques (§3), selected
// via Config.Technique:
//
//   - TechBarriers — trust barrier replies (the broken baseline);
//   - TechTimeout — fixed worst-case delay after each barrier reply;
//   - TechAdaptive — switch-model-based estimated activation times;
//   - TechSequential — a versioned data-plane probe rule confirms whole
//     batches (needs a switch that does not reorder across barriers);
//   - TechGeneral — per-rule data-plane probes that work even on
//     reordering switches, with automatic fallback when no distinguishing
//     probe packet exists.
//
// Fine-grained per-rule acknowledgments are delivered to RUM-aware
// controllers as OpenFlow Error messages with the reserved type
// ErrTypeRUMAck (§4). Setting Config.BarrierLayer additionally restores
// reliable barrier semantics for unmodified controllers (§2).
//
// # Deployments
//
// The same layer code runs two ways:
//
//   - In simulation (see internal/experiments and the examples): a
//     deterministic discrete-event engine drives an emulated network and
//     emulated switches, reproducing the paper's evaluation.
//   - As a real TCP proxy (ProxyServer, cmd/rumproxy): switches connect
//     to RUM as if it were the controller; RUM connects onward to the
//     real controller, impersonating the switches.
package rum

import (
	"rum/internal/core"
	"rum/internal/of"
	"rum/internal/sim"
)

// Technique selects how RUM decides a rule is active in the data plane.
type Technique = core.Technique

// The acknowledgment techniques of §3 of the paper.
const (
	TechBarriers   = core.TechBarriers
	TechTimeout    = core.TechTimeout
	TechAdaptive   = core.TechAdaptive
	TechSequential = core.TechSequential
	TechGeneral    = core.TechGeneral
	TechNoWait     = core.TechNoWait
)

// Config parameterizes a RUM instance; see core.Config for field
// documentation.
type Config = core.Config

// Topology is RUM's map of inter-switch links, used to route probe
// packets around each probed switch.
type Topology = core.Topology

// TopoLink is one inter-switch link.
type TopoLink = core.TopoLink

// NewTopology builds a topology from a link list.
func NewTopology(links []TopoLink) *Topology { return core.NewTopology(links) }

// RUM is a deployment of the monitoring layer across a set of switches.
type RUM = core.RUM

// New creates a RUM instance. Attach switches with AttachSwitch, then
// install probe infrastructure with Bootstrap.
func New(cfg Config, topo *Topology) *RUM { return core.New(cfg, topo) }

// Clock abstracts time: sim.New() for deterministic simulation,
// NewWallClock() for real deployments.
type Clock = sim.Clock

// NewSimClock returns a deterministic discrete-event clock (and engine).
func NewSimClock() *sim.Sim { return sim.New() }

// NewWallClock returns a real-time clock.
func NewWallClock() *sim.Wall { return sim.NewWall() }

// ErrTypeRUMAck is the reserved OpenFlow error type carrying RUM's
// positive acknowledgments; see ParseAck.
const ErrTypeRUMAck = of.ErrTypeRUMAck

// Ack codes delivered with ErrTypeRUMAck.
const (
	AckInstalled = of.RUMAckInstalled
	AckRemoved   = of.RUMAckRemoved
	AckFallback  = of.RUMAckFallback
)

// ParseAck inspects a controller-received OpenFlow message; if it is a
// RUM positive acknowledgment it returns the acknowledged FlowMod's
// transaction id and the ack code.
func ParseAck(m of.Message) (ackedXID uint32, code uint16, ok bool) {
	e, isErr := m.(*of.Error)
	if !isErr {
		return 0, 0, false
	}
	return e.IsRUMAck()
}
