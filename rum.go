// Package rum is the public API of RUM (Rule Update Monitoring), a
// reproduction of "Providing Reliable FIB Update Acknowledgments in SDN"
// (Kuźniar, Perešíni, Kostić — CoNEXT 2014).
//
// RUM is a transparent layer between an SDN controller and its OpenFlow
// 1.0 switches. It intercepts the control channel and guarantees that the
// controller never receives an acknowledgment for a rule modification
// before the rule is actually visible in the switch's data plane. On
// switches with broken barrier implementations — which answer early, or
// reorder rule installations across barriers — this is the difference
// between consistent updates that hold in practice and transient black
// holes, loops, or security-policy violations.
//
// # Acknowledgment strategies
//
// How RUM decides a rule is active is pluggable: an AckStrategy value
// builds one SwitchStrategy per attached switch, and RUM drives it
// through four hooks — flow-mod observed (OnFlowMod), barrier reply
// (OnBarrierReply), probe result (OnProbe), and timer tick (OnTick).
// The paper's five techniques (§3) ship as registered strategies,
// selected by name via Config.Technique:
//
//   - TechBarriers ("barriers") — trust barrier replies (the broken
//     baseline);
//   - TechTimeout ("timeout") — fixed worst-case delay after each
//     barrier reply;
//   - TechAdaptive ("adaptive") — switch-model-based estimated
//     activation times;
//   - TechSequential ("sequential") — a versioned data-plane probe rule
//     confirms whole batches (needs a switch that does not reorder
//     across barriers);
//   - TechGeneral ("general") — per-rule data-plane probes that work
//     even on reordering switches, with automatic fallback when no
//     distinguishing probe packet exists;
//   - TechNoWait ("no-wait") — acknowledge instantly, the evaluation's
//     lower bound.
//
// User-defined strategies register with RegisterStrategy and become
// selectable by the same name mechanism; Config.Strategy injects an
// unregistered instance directly. Because the adaptive technique is
// explicitly switch-model-specific, Config.PerSwitch overrides the
// strategy per switch, so one deployment can mix techniques across
// heterogeneous switch models.
//
// # Typed acknowledgments
//
// Three consumption surfaces, from highest- to lowest-level:
//
//   - Ack futures: RUM.Watch(switch, xid) before sending a FlowMod
//     returns an UpdateHandle whose AwaitAck (or Done/Result, under a
//     simulated clock) yields a typed AckResult — installed, removed,
//     fallback, or failed, with the observed activation latency.
//   - Event stream: RUM.Subscribe delivers AckEvent, ProbeEvent, and
//     FallbackEvent values — the structured form of RUM.Stats.
//   - Wire compatibility: RUM-aware controllers on the far side of a TCP
//     proxy receive per-rule acknowledgments as OpenFlow Error messages
//     with the reserved type ErrTypeRUMAck (§4); ParseAck decodes them.
//
// Setting Config.BarrierLayer additionally restores reliable barrier
// semantics for unmodified controllers (§2).
//
// # Deployments
//
// The same layer code runs two ways:
//
//   - In simulation (see internal/experiments and the examples): a
//     deterministic discrete-event engine (NewSimClock) drives an
//     emulated network and emulated switches, reproducing the paper's
//     evaluation.
//   - As a real TCP proxy (ProxyServer, cmd/rumproxy): switches connect
//     to RUM as if it were the controller; RUM connects onward to the
//     real controller, impersonating the switches.
package rum

import (
	"rum/internal/cluster"
	"rum/internal/core"
	"rum/internal/hsa"
	"rum/internal/netsim"
	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/planner"
	"rum/internal/proxy"
	"rum/internal/sim"
	"rum/internal/transport"
)

// Technique names a registered acknowledgment strategy; the zero value
// selects the barrier baseline.
type Technique = core.Technique

// The built-in strategy names (the paper's five techniques of §3 plus
// the no-wait lower bound).
const (
	TechBarriers   = core.TechBarriers
	TechTimeout    = core.TechTimeout
	TechAdaptive   = core.TechAdaptive
	TechSequential = core.TechSequential
	TechGeneral    = core.TechGeneral
	TechNoWait     = core.TechNoWait
)

// AckStrategy builds per-switch acknowledgment strategies; one value
// serves one RUM instance. Implement it (together with SwitchStrategy)
// to plug a custom technique into RUM, and register it with
// RegisterStrategy to select it by name.
type AckStrategy = core.AckStrategy

// SwitchStrategy is the per-switch half of an AckStrategy: the hooks RUM
// drives for one switch. Embed BaseSwitchStrategy for no-op defaults of
// everything but OnFlowMod.
type SwitchStrategy = core.SwitchStrategy

// StrategyContext is a SwitchStrategy's handle on its deployment: clock,
// topology, probe injection, and the confirmation sinks.
type StrategyContext = core.StrategyContext

// BaseSwitchStrategy provides no-op defaults for every SwitchStrategy
// hook except OnFlowMod.
type BaseSwitchStrategy = core.BaseSwitchStrategy

// SwitchBootstrapper is implemented by SwitchStrategy values that
// preinstall infrastructure rules (driven by RUM.Bootstrap).
type SwitchBootstrapper = core.SwitchBootstrapper

// ProbeRouter is implemented by AckStrategy deployments whose probe
// packets surface at switches other than the probed one.
type ProbeRouter = core.ProbeRouter

// StrategyFactory builds an AckStrategy from an effective configuration.
type StrategyFactory = core.StrategyFactory

// RegisterStrategy makes a strategy selectable by name via
// Config.Technique and Config.PerSwitch. It panics on duplicate names.
func RegisterStrategy(name string, f StrategyFactory) { core.RegisterStrategy(name, f) }

// StrategyNames lists the registered strategy names in sorted order.
func StrategyNames() []string { return core.StrategyNames() }

// Update is one tracked FlowMod awaiting data-plane confirmation, as
// seen by strategies.
type Update = core.Update

// Outcome is the typed result of one acknowledged modification.
type Outcome = core.Outcome

// The acknowledgment outcomes.
const (
	OutcomeInstalled = core.OutcomeInstalled
	OutcomeRemoved   = core.OutcomeRemoved
	OutcomeFallback  = core.OutcomeFallback
	OutcomeFailed    = core.OutcomeFailed
)

// AckResult is the typed resolution of one rule modification.
type AckResult = core.AckResult

// The typed failure causes carried by AckResult.Err (and AckEvent.Err)
// when an update resolves as OutcomeFailed; match with errors.Is.
// ErrChannelLost means the switch's control channel died with the update
// in flight (re-issue it after reconnection); ErrSwitchRestarted means
// the switch crashed and lost its whole FIB (replay the intended state);
// ErrSwitchRejected means the switch answered with an OpenFlow error.
var (
	ErrChannelLost     = core.ErrChannelLost
	ErrSwitchRestarted = core.ErrSwitchRestarted
	ErrSwitchRejected  = core.ErrSwitchRejected
)

// ErrOverloaded is the typed refusal carried by an update's AckResult
// when a bounded queue sheds it under Config.OutboxLimit admission (or
// a bounded transport send fails): the rule was never installed and no
// wire ack was emitted for it. Match with errors.Is. See
// docs/OVERLOAD.md for the overload contract.
var ErrOverloaded = core.ErrOverloaded

// OverloadPolicy selects what a bounded queue does with work arriving
// at its limit; see docs/OVERLOAD.md.
type OverloadPolicy = core.OverloadPolicy

// The overload policies for Config.Overload.
const (
	OverloadBlock   = core.OverloadBlock
	OverloadShed    = core.OverloadShed
	OverloadDegrade = core.OverloadDegrade
)

// ParseOverloadPolicy maps the flag spellings (block, shed, degrade)
// to a policy.
func ParseOverloadPolicy(s string) (OverloadPolicy, error) {
	return transport.ParseOverloadPolicy(s)
}

// LiveUpdates reports how many pooled tracked-update structs currently
// hold references — a debugging counter for verifying that workloads
// (especially detach/reconnect cycles) leak no update references. See
// docs/ARCHITECTURE.md's ownership contract.
func LiveUpdates() int64 { return core.LiveUpdates() }

// UpdateHandle is an awaitable future for one FlowMod's acknowledgment;
// obtain it from RUM.Watch before sending the FlowMod.
type UpdateHandle = core.UpdateHandle

// Event is one typed observability event (AckEvent, ProbeEvent, or
// FallbackEvent); subscribe with RUM.Subscribe.
type Event = core.Event

// AckEvent reports one resolved update.
type AckEvent = core.AckEvent

// ProbeEvent reports injected probe packets.
type ProbeEvent = core.ProbeEvent

// FallbackEvent reports a control-plane fallback.
type FallbackEvent = core.FallbackEvent

// Subscription is one subscriber's view of the event stream.
type Subscription = core.Subscription

// Config parameterizes a RUM instance; see core.Config for field
// documentation.
type Config = core.Config

// Topology is RUM's map of inter-switch links, used to route probe
// packets around each probed switch.
type Topology = core.Topology

// TopoLink is one inter-switch link.
type TopoLink = core.TopoLink

// NewTopology builds a topology from a link list.
func NewTopology(links []TopoLink) *Topology { return core.NewTopology(links) }

// FatTree is a generated k-ary fat-tree switch fabric — the
// datacenter-scale workload's topology ((k/2)² core switches plus k pods
// of k/2 aggregation and k/2 edge switches; 80 switches at k=8).
type FatTree = netsim.FatTree

// NewFatTree generates a k-ary fat-tree fabric description (k even, in
// [2, 16]).
func NewFatTree(k int) (*FatTree, error) { return netsim.NewFatTree(k) }

// FatTreeTopology expands a fat-tree fabric into RUM's topology map plus
// the switch identity list a TCP proxy deployment expects, with datapath
// ids assigned 1..N in FatTree.Switches order.
func FatTreeTopology(ft *FatTree) (*Topology, []SwitchIdentity) {
	links := make([]TopoLink, len(ft.Links))
	for i, l := range ft.Links {
		links[i] = TopoLink{A: l.A, APort: l.APort, B: l.B, BPort: l.BPort}
	}
	names := ft.Switches()
	ids := make([]SwitchIdentity, len(names))
	for i, name := range names {
		ids[i] = SwitchIdentity{DPID: uint64(i + 1), Name: name}
	}
	return NewTopology(links), ids
}

// RUM is a deployment of the monitoring layer across a set of switches.
type RUM = core.RUM

// New creates a RUM instance, resolving the configured strategies
// against the registry. Attach switches with AttachSwitch, then install
// probe infrastructure with Bootstrap.
func New(cfg Config, topo *Topology) (*RUM, error) { return core.New(cfg, topo) }

// Clock abstracts time: NewSimClock() for deterministic simulation,
// NewWallClock() for real deployments.
type Clock = sim.Clock

// NewSimClock returns a deterministic discrete-event clock (and engine).
func NewSimClock() *sim.Sim { return sim.New() }

// NewWallClock returns a real-time clock.
func NewWallClock() *sim.Wall { return sim.NewWall() }

// Message is one OpenFlow message crossing the proxied control channel.
type Message = of.Message

// FlowMod is an OpenFlow 1.0 flow-table modification.
type FlowMod = of.FlowMod

// BarrierRequest and BarrierReply are the OpenFlow barrier pair.
type (
	BarrierRequest = of.BarrierRequest
	BarrierReply   = of.BarrierReply
)

// PacketIn carries a data-plane packet punted to the controller.
type PacketIn = of.PacketIn

// PacketOut injects a data-plane packet through a switch.
type PacketOut = of.PacketOut

// PacketFields is the parsed header-field view of a data-plane packet,
// as handed to SwitchStrategy.OnProbe.
type PacketFields = packet.Fields

// ErrTypeRUMAck is the reserved OpenFlow error type carrying RUM's
// positive acknowledgments; see ParseAck.
const ErrTypeRUMAck = of.ErrTypeRUMAck

// Ack codes delivered with ErrTypeRUMAck.
const (
	AckInstalled = of.RUMAckInstalled
	AckRemoved   = of.RUMAckRemoved
	AckFallback  = of.RUMAckFallback
)

// ParseAck inspects a controller-received OpenFlow message; if it is a
// RUM positive acknowledgment it returns the acknowledged FlowMod's
// transaction id and the ack code. It is the wire-level compatibility
// path for controllers on the far side of a TCP proxy; in-process
// callers should prefer RUM.Watch and AwaitAck.
func ParseAck(m of.Message) (ackedXID uint32, code uint16, ok bool) {
	e, isErr := m.(*of.Error)
	if !isErr {
		return 0, 0, false
	}
	return e.IsRUMAck()
}

// Planner turns RUM's reliable acknowledgments into an engine for
// consistent network updates: policy changes compile into
// dependency-ordered waves, each wave is verified loop- and
// blackhole-free with header-space analysis before release, and release
// gates on the previous wave's ack futures. See docs/PLANNER.md.
type Planner = planner.Planner

// PlannerConfig wires a Planner into a deployment (RUM instance, clock,
// send path, FIB snapshots, data-plane adjacency).
type PlannerConfig = planner.Config

// NewPlanner validates the wiring and returns a Planner; compile updates
// with Plan (or PlanSegments) and run them with Execute.
func NewPlanner(cfg PlannerConfig) (*Planner, error) { return planner.New(cfg) }

// PathChange describes migrating one header-space region from an old
// switch path to a new one — the planner's policy-change input.
type PathChange = planner.PathChange

// PathHop is one switch on a forwarding path with its output port.
type PathHop = planner.PathHop

// UpdatePlan is a compiled consistent update: segments of ordered waves
// plus the serialization edges between overlapping segments.
type UpdatePlan = planner.Plan

// PlanSegment is an independently schedulable unit of an update plan;
// build one per PathChange with BuildPlanSegment, or assemble stages by
// hand for updates the path-change form cannot express.
type PlanSegment = planner.Segment

// PlanStage is one wave of a segment: ops released together, confirmed
// together.
type PlanStage = planner.Stage

// PlanOp is one FlowMod of a wave.
type PlanOp = planner.Op

// BuildPlanSegment compiles a path change into its wave schedule
// (add-before-remove, downstream flips first, strict deletes last).
func BuildPlanSegment(pc PathChange) (PlanSegment, error) { return planner.BuildSegment(pc) }

// PlanExec is one plan execution in progress: Pump it under a simulated
// clock or Run it under a wall clock; Events/EventLog expose progress,
// Waves the per-wave latency attribution, and Resync reconciles a
// switch after an external recovery event.
type PlanExec = planner.Exec

// PlannerEvent is one step of a plan execution's observable progress.
type PlannerEvent = planner.Event

// PlannerEventKind tags planner events.
type PlannerEventKind = planner.EventKind

// The planner event kinds.
const (
	PlanStageReleased  = planner.EventStageReleased
	PlanStageConfirmed = planner.EventStageConfirmed
	PlanVerifyFailed   = planner.EventVerifyFailed
	PlanReplan         = planner.EventReplan
	PlanSegmentDone    = planner.EventSegmentDone
	PlanDone           = planner.EventPlanDone
)

// WaveStat attributes latency to one released wave.
type WaveStat = planner.WaveStat

// FIBRule is one installed rule in a switch's FIB snapshot, as consumed
// by the planner's State callback and the header-space verifier.
type FIBRule = hsa.Rule

// PortPeer identifies the far end of an inter-switch link in the
// verifier's data-plane adjacency map.
type PortPeer = hsa.PortPeer

// PortMap expands a link list into the per-switch adjacency map the
// verifier traces (both directions of every link). Ports absent from the
// map are treated as egress (host-facing) ports.
func PortMap(links []TopoLink) map[string]map[uint16]PortPeer {
	out := make(map[string]map[uint16]PortPeer)
	add := func(sw string, port uint16, peer PortPeer) {
		m := out[sw]
		if m == nil {
			m = make(map[uint16]PortPeer)
			out[sw] = m
		}
		m[port] = peer
	}
	for _, l := range links {
		add(l.A, l.APort, PortPeer{Switch: l.B, Port: l.BPort})
		add(l.B, l.BPort, PortPeer{Switch: l.A, Port: l.APort})
	}
	return out
}

// Region is a header-space region anchored at an ingress switch — the
// scope of one segment's verification.
type Region = hsa.Region

// NetState is a network-wide forwarding state (per-switch rule tables
// plus adjacency) for header-space verification.
type NetState = hsa.NetState

// VerifyTransient checks that every transient mix of two forwarding
// states is loop-free and blackhole-free for the region; on violation it
// returns a *TransientCounterexample.
func VerifyTransient(oldState, newState *NetState, region Region) error {
	return hsa.VerifyTransient(oldState, newState, region)
}

// TransientCounterexample is the minimal witness VerifyTransient returns
// for a rejected transition: the offending header-space point and the
// path it takes.
type TransientCounterexample = hsa.CounterexampleError

// Cluster shards one RUM deployment across several proxy instances for
// fabrics too large for one process: a deterministic shard map assigns
// every switch a preference order over members, attachments route to the
// first live member, network-wide updates fan out through composite
// futures, and a member crash orphans its switches with typed ShardError
// failures until they are re-attached to (and adopted by) a survivor.
// See docs/CLUSTER.md.
type Cluster = cluster.Cluster

// ClusterConfig wires a Cluster: member count (or an explicit shard map),
// the per-member RUM configuration template, and the shared topology.
type ClusterConfig = cluster.Config

// NewCluster builds the member RUM instances and returns the cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// ShardMap deterministically assigns switches to cluster members by
// rendezvous hashing, with optional pinned primaries (AssignShardMapFatTree
// pins pod-aligned primaries so data-plane probing stays shard-local).
type ShardMap = cluster.ShardMap

// NewShardMap creates a shard map over n members.
func NewShardMap(n int) (*ShardMap, error) { return cluster.NewShardMap(n) }

// AssignShardMapFatTree pins pod-aware primaries for a fat-tree fabric:
// pod p's edge and aggregation switches map to member p mod n and core
// switch c to member c mod n, keeping each pod's probe neighborhoods on
// one member.
func AssignShardMapFatTree(m *ShardMap, ft *FatTree) { cluster.AssignFatTree(m, ft) }

// ProxySession is one proxied switch's session on a cluster member (or a
// single RUM instance): the pair of pumps between its controller-side and
// switch-side conns.
type ProxySession = proxy.Session

// SwitchXID addresses one update of a cluster-wide fanout.
type SwitchXID = cluster.SwitchXID

// ClusterUpdate is one switch-targeted FlowMod of a cluster-wide fanout.
type ClusterUpdate = cluster.Update

// CompositeHandle aggregates the ack futures of a cluster-wide fanout
// into one awaitable result; obtain it from Cluster.WatchAll or
// Cluster.Fanout.
type CompositeHandle = cluster.CompositeHandle

// CompositeResult is the aggregate resolution of a fanout: every
// sub-result in input order, the confirmed/failed counts, and the first
// failure as a typed *ShardError naming the losing shard.
type CompositeResult = cluster.CompositeResult

// ShardError is the typed failure cause for cluster updates: which shard
// (member) lost the update, on which switch and xid, and why. It unwraps
// to the core sentinel causes, so errors.Is(err, ErrChannelLost) and
// errors.Is(err, ErrProxyLost) both match a crash-induced failure.
type ShardError = cluster.ShardError

// ErrProxyLost is the failure cause carried when an owning cluster member
// crashed with updates in flight; it wraps ErrChannelLost.
var ErrProxyLost = cluster.ErrProxyLost
